"""Report rendering: ``text`` for humans, ``json``/``sarif`` for CI
artifacts, ``github`` for workflow annotations.

Every format consumes findings already in canonical order and adds
nothing nondeterministic (no timestamps, no absolute paths, no
environment echoes), so a report is a pure function of the tree --
CI uploads the JSON/SARIF artifacts and diffs between runs are
meaningful, and the hash-seed subprocess test holds all four formats
byte-identical.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.registry import rule_docs

REPORT_VERSION = 1

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def counts_by_rule(findings: Sequence[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    lines: List[str] = [
        f"{finding.location()}: {finding.rule} {finding.message}"
        for finding in findings
    ]
    if findings:
        summary = ", ".join(
            f"{rule}: {count}" for rule, count in counts_by_rule(findings).items()
        )
        lines.append("")
        lines.append(
            f"{len(findings)} finding{'s' if len(findings) != 1 else ''} "
            f"in {files_checked} files ({summary})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_checked} files")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    payload = {
        "version": REPORT_VERSION,
        "files_checked": files_checked,
        "counts": counts_by_rule(findings),
        "findings": [finding.as_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_sarif(findings: Sequence[Finding], files_checked: int) -> str:
    """SARIF 2.1.0, the format GitHub code scanning ingests.

    The driver advertises every registered rule (sorted by id, so the
    rule table is stable even when a run has no findings); each finding
    becomes one ``error``-level result.  ``files_checked`` is not
    representable in SARIF and is deliberately dropped rather than
    smuggled into a property bag CI would never read.
    """
    del files_checked
    rules = [
        {
            "id": doc.rule_id,
            "name": doc.name,
            "shortDescription": {"text": doc.summary},
        }
        for doc in rule_docs()
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.lint",
                        "informationUri": "docs/static-analysis.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def render_github(findings: Sequence[Finding], files_checked: int) -> str:
    """GitHub Actions workflow commands: one ``::error`` line per finding.

    Emitted to stdout by the CI lint step so findings surface as inline
    PR annotations.  Clean runs produce a single summary line (a
    workflow command with no findings would be empty output, which
    reads as a broken step).
    """
    if not findings:
        return f"clean: 0 findings in {files_checked} files\n"
    lines = [
        f"::error file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule}::{finding.message}"
        for finding in findings
    ]
    return "\n".join(lines) + "\n"
