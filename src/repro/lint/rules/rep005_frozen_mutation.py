"""REP005: mutating frozen dataclasses after construction.

``FloodSpec`` (and ``VariantSpec``, ``BatchKey``...) are frozen
dataclasses precisely so a validated request can be hashed, cached by
digest, and shipped between processes without anyone changing it in
flight.  ``object.__setattr__`` pierces that guarantee.  The only
sanctioned use is canonicalisation *during construction* -- inside
``__init__``/``__post_init__``/``__new__`` of the frozen class itself,
which is how ``FloodSpec.__post_init__`` resolves budgets and
canonicalises sources.

Flagged: every ``object.__setattr__(...)`` call that is not lexically
inside a constructor method of a ``@dataclass(frozen=True)`` class.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import (
    decorator_is_frozen_dataclass,
    dotted_name,
    iter_class_methods,
)

RULE_ID = "REP005"

_CONSTRUCTOR_METHODS = ("__init__", "__post_init__", "__new__")


def _is_object_setattr(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name in ("object.__setattr__", "super.__setattr__")


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    allowed_spans: List[ast.AST] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and decorator_is_frozen_dataclass(node):
            for method_name, method in iter_class_methods(node):
                if method_name in _CONSTRUCTOR_METHODS:
                    allowed_spans.append(method)
    allowed_calls = set()
    for span in allowed_spans:
        for node in ast.walk(span):
            if isinstance(node, ast.Call) and _is_object_setattr(node):
                allowed_calls.add(id(node))
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and _is_object_setattr(node)
            and id(node) not in allowed_calls
        ):
            findings.append(
                Finding(
                    path=ctx.path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    rule=RULE_ID,
                    message=(
                        "object.__setattr__ outside __init__/__post_init__ "
                        "of a frozen dataclass defeats request immutability "
                        "(FloodSpec identity/digest contracts); construct a "
                        "new instance instead"
                    ),
                )
            )
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="frozen-mutation",
        summary=(
            "object.__setattr__ on frozen dataclasses outside construction"
        ),
        check=check,
    )
)
