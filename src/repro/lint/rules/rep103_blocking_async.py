"""REP103: blocking calls on the event loop.

The service keeps its latency promises only while the event loop spins
freely: admission, batching and cache coalescing all run on it, and one
synchronous stall starves every queued request at once.  The sanctioned
pattern is what ``service.py`` does -- CPU-bound sweeps go to the
:class:`SweepPool` workers via executor hand-off, file I/O stays out of
coroutines entirely.

Flagged, lexically inside an ``async def`` body (nested synchronous
``def``/``lambda`` bodies are separate execution contexts -- an
executor callback may block -- and are skipped):

* ``time.sleep(...)`` (resolved through import aliases; the async
  replacement is ``asyncio.sleep``),
* synchronous file I/O: builtin ``open(...)`` and the pathlib
  one-shots ``.read_text``/``.write_text``/``.read_bytes``/
  ``.write_bytes``,
* a direct ``.sweep(...)`` call -- the blocking sweep-pool entry point;
  coroutines must use the submit/future side of the pool instead.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, List

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import ImportMap, call_name, is_builtin_call

RULE_ID = "REP103"

_BLOCKING_DOTTED = ("time.sleep",)
_BLOCKING_METHODS = (
    "read_bytes",
    "read_text",
    "sweep",
    "write_bytes",
    "write_text",
)

_SCOPE_BARRIERS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,  # scanned by its own iteration, not the parent's
    ast.Lambda,
    ast.ClassDef,
)


def _walk_async_scope(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _blocking_reason(node: ast.Call, imports: ImportMap) -> str:
    if is_builtin_call(node, "open"):
        return (
            "synchronous open() blocks the event loop; do file I/O "
            "outside coroutines or via an executor"
        )
    resolved = call_name(node, imports)
    if resolved in _BLOCKING_DOTTED:
        return f"{resolved}() blocks the event loop; use asyncio.sleep"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _BLOCKING_METHODS
    ):
        if node.func.attr == "sweep":
            return (
                ".sweep() is the blocking pool entry point; coroutines "
                "must use the submit/future side of the pool"
            )
        return (
            f".{node.func.attr}() is synchronous file I/O and blocks the "
            "event loop; do it outside coroutines or via an executor"
        )
    return ""


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    findings: List[Finding] = []
    for func in ast.walk(tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _walk_async_scope(func):
            if not isinstance(node, ast.Call):
                continue
            reason = _blocking_reason(node, imports)
            if reason:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=RULE_ID,
                        message=f"blocking call in async def: {reason}",
                    )
                )
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="blocking-async",
        summary=(
            "time.sleep / sync file I/O / blocking .sweep() inside "
            "async def"
        ),
        check=check,
    )
)
