"""REP003: all randomness flows through ``repro.rng``.

The PR 4 determinism model: every stochastic draw is a *pure hash of
its coordinates* (seed, trial, round, arc slot) via the counter-based
generator in :mod:`repro.rng` -- never a sequential stream.  Sequential
streams (``random.Random``, ``numpy.random``) make outcomes depend on
iteration order, sharding, and batching; ``secrets`` is nondeterministic
by design.  This rule flags any import or attribute use of ``random``,
``numpy.random``, or ``secrets`` outside ``repro/rng.py``.

Legitimate exceptions exist -- a seeded ``random.Random(seed)`` used
only at *topology generation* time (never at execution time) is
deterministic and pinned by tests -- and each carries an inline
suppression explaining exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import ImportMap, dotted_name

RULE_ID = "REP003"

_BANNED_MODULES = ("random", "secrets", "numpy.random")


def _banned(module: str) -> bool:
    return any(
        module == banned or module.startswith(banned + ".")
        for banned in _BANNED_MODULES
    )


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    imports = ImportMap(tree)

    def flag(node: ast.AST, what: str) -> None:
        findings.append(
            Finding(
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset + 1,
                rule=RULE_ID,
                message=(
                    f"{what} bypasses the counter-based RNG; every stochastic "
                    f"draw must be a pure hash of its coordinates via "
                    f"repro.rng (derive_key/round_key/slot_draw)"
                ),
            )
        )

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _banned(alias.name):
                    flag(node, f"import of {alias.name!r}")
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.level == 0 and _banned(node.module):
                flag(node, f"import from {node.module!r}")
        elif isinstance(node, ast.Attribute):
            name = dotted_name(node)
            if name is None:
                continue
            resolved = imports.resolve(name)
            # `np.random.default_rng(...)`: flag the `.random` access
            # itself (the innermost attribute), once per use site.
            if resolved == "numpy.random":
                flag(node, f"use of {resolved!r}")
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="rng-discipline",
        summary=(
            "random/numpy.random/secrets used outside repro/rng.py "
            "(sequential streams break coordinate-pure determinism)"
        ),
        check=check,
        excludes=("repro/rng.py",),
    )
)
