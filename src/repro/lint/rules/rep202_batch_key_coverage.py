"""REP202: every digest-participating field reaches ``batch_key()`` or
a declared exclusion.

The coalescing-misbucket bug class.  The service micro-batches requests
by ``batch_key()``: two requests sharing a bucket are executed as one
sharded sweep, so every spec field that changes the *answer* (i.e.
participates in the digest) must either split the bucket (be read by
``batch_key()``) or be declared bucket-irrelevant in an explicit
``BATCH_KEY_EXCLUDED`` frozenset with the reason recorded next to it.
A field in the digest but silently absent from both is how requests
with different semantics end up fused into one execution.

Like REP201's frozenset, ``BATCH_KEY_EXCLUDED`` is held honest: stale
entries (not a field) and contradictions (``batch_key()`` reads it) are
findings at the frozenset assignment.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext
from repro.lint.registry import ProjectRule, register_project_rule

RULE_ID = "REP202"


def check(ctx: ProjectContext) -> Iterable[Finding]:
    spec = ctx.spec
    if spec is None or not (spec.has_digest and spec.has_batch_key):
        return []
    findings: List[Finding] = []
    digest_fields = set(spec.digest_fields)
    batch_fields = set(spec.batch_key_fields)
    excluded = set(spec.batch_key_excluded)
    for field_name, line in sorted(spec.fields.items()):
        if field_name not in digest_fields:
            continue  # not answer-bearing; REP201's problem if wrong
        if field_name in batch_fields or field_name in excluded:
            continue
        findings.append(
            Finding(
                path=spec.path,
                line=line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"digest field {field_name!r} reaches neither "
                    "batch_key() nor BATCH_KEY_EXCLUDED; requests "
                    "differing in it could coalesce into one bucket"
                ),
            )
        )
    for field_name in sorted(excluded):
        if field_name not in spec.fields:
            findings.append(
                Finding(
                    path=spec.path,
                    line=spec.batch_key_excluded_line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"BATCH_KEY_EXCLUDED names {field_name!r}, which "
                        "is not a FloodSpec field; remove the stale entry"
                    ),
                )
            )
        elif field_name in batch_fields:
            findings.append(
                Finding(
                    path=spec.path,
                    line=spec.batch_key_excluded_line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"BATCH_KEY_EXCLUDED names {field_name!r}, but "
                        "batch_key() reads it; drop the contradictory entry"
                    ),
                )
            )
    return findings


register_project_rule(
    ProjectRule(
        rule_id=RULE_ID,
        name="batch-key-coverage",
        summary=(
            "a digest-participating FloodSpec field is missing from both "
            "batch_key() and BATCH_KEY_EXCLUDED"
        ),
        check=check,
    )
)
