"""REP101: a registered future with an exception path that never settles it.

The PR 8 bug class.  ``FloodService`` coalesces identical in-flight
queries by registering a ``loop.create_future()`` into a pending table;
every later identical request *joins* that future instead of executing.
If the leader's admission or submission then fails and the ``except``
branch exits without settling the pending future, every joiner awaits
a future nobody will ever resolve -- a silent deadlock that only shows
up under concurrent load.

Two shapes are flagged (lifecycle model in :mod:`repro.lint.flow`):

* a future that is created and then never registered, settled, or
  handed off at all -- a dead future nobody can resolve;
* a *registered* future whose at-risk window (registration up to the
  first hand-off) overlaps a ``try`` whose ``except`` branch neither
  settles the future nor hands it off (a covering ``finally`` counts
  for every handler).

Settling the pending future *before* touching caller futures -- the
PR 8 fix -- is exactly the pattern that passes: the settle/hand-off
mention in each handler is the evidence the rule looks for.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.flow import (
    future_flows,
    iter_functions,
    scope_tries,
    try_body_span,
    uncovered_handlers,
)
from repro.lint.registry import FileContext, Rule, register_rule

RULE_ID = "REP101"


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for func in iter_functions(tree):
        tries = scope_tries(func)
        for flow in future_flows(func):
            if flow.is_dead():
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=flow.created_line,
                        col=flow.created_col,
                        rule=RULE_ID,
                        message=(
                            f"future {flow.name!r} is created but never "
                            "settled, registered, or handed off; nothing "
                            "can ever resolve it"
                        ),
                    )
                )
                continue
            first_registration = flow.first_registration()
            if first_registration is None:
                continue
            window_end = flow.end_line()
            for try_node in tries:
                body_start, body_end = try_body_span(try_node)
                if body_end < first_registration or body_start > window_end:
                    continue
                for handler in uncovered_handlers(try_node, flow.name):
                    findings.append(
                        Finding(
                            path=ctx.path,
                            line=handler.lineno,
                            col=handler.col_offset + 1,
                            rule=RULE_ID,
                            message=(
                                f"except branch leaves registered future "
                                f"{flow.name!r} unsettled; joiners of the "
                                "pending table will await it forever -- "
                                "settle it (set_exception) or hand it off "
                                "on this branch"
                            ),
                        )
                    )
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="unsettled-futures",
        summary=(
            "a registered create_future() has an except branch that "
            "neither settles nor hands it off"
        ),
        check=check,
    )
)
