"""Shared AST utilities for the rule visitors.

Every rule needs the same three primitives: resolving a call's dotted
name through the module's import aliases, recognising the expressions
that produce sets, and walking class bodies with method context.  They
live here so the per-rule modules stay single-purpose.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple


class ImportMap:
    """Module-level import aliasing, resolved once per file.

    Maps local names to the dotted path they denote: ``import time as
    t`` gives ``t -> time``; ``from time import perf_counter as pc``
    gives ``pc -> time.perf_counter``.  Only top-level and
    function-level imports are folded in -- enough for the stdlib
    modules the rules care about.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        """Expand the leading segment of ``dotted`` through the aliases."""
        head, sep, rest = dotted.partition(".")
        expanded = self.aliases.get(head, head)
        return expanded + sep + rest if sep else expanded


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call, imports: Optional[ImportMap] = None) -> Optional[str]:
    """The resolved dotted name of a call's callee, if it has one."""
    name = dotted_name(node.func)
    if name is None:
        return None
    return imports.resolve(name) if imports is not None else name


def is_builtin_call(node: ast.Call, builtin: str) -> bool:
    """Whether ``node`` calls the bare name ``builtin`` (shadowing ignored)."""
    return isinstance(node.func, ast.Name) and node.func.id == builtin


def contains_call(node: ast.AST, builtin: str) -> Optional[ast.Call]:
    """The first descendant call of bare ``builtin`` inside ``node``."""
    for child in ast.walk(node):
        if isinstance(child, ast.Call) and is_builtin_call(child, builtin):
            return child
    return None


SET_CONSTRUCTORS = ("set", "frozenset")

# Methods that return a set when invoked on a set -- and, decisively for
# this codebase, Graph.neighbors(), which returns a frozenset of nodes.
SET_RETURNING_METHODS = (
    "copy",
    "difference",
    "intersection",
    "neighbors",
    "symmetric_difference",
    "union",
)

# Consumers for which iteration order cannot matter.
ORDER_FREE_CALLS = frozenset(
    {
        "all",
        "any",
        "frozenset",
        "len",
        "max",
        "min",
        "set",
        "sum",
        "sorted",
        "sort_nodes",
    }
)

# Callees that impose a deterministic order on an unordered iterable.
ORDERING_CALLS = ("sorted", "sort_nodes")


def is_set_expression(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` syntactically produces a ``set``/``frozenset``.

    ``set_names`` holds local variable names known (by assignment
    tracking) to hold sets.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in SET_CONSTRUCTORS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in SET_RETURNING_METHODS
        ):
            # `.union()` etc. only count when the receiver is itself a
            # known set, except `.neighbors(...)`, which is set-returning
            # regardless of receiver (it is the Graph API).
            if node.func.attr == "neighbors":
                return True
            return is_set_expression(node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # Set algebra: either operand being a known set marks the result.
        return is_set_expression(node.left, set_names) or is_set_expression(
            node.right, set_names
        )
    return False


def is_ordering_call(node: ast.AST) -> bool:
    """Whether ``node`` is ``sorted(...)``/``sort_nodes(...)`` (any arity)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ORDERING_CALLS
    )


def iter_class_methods(
    cls: ast.ClassDef,
) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(name, node)`` for each method defined directly on ``cls``."""
    for node in cls.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


def decorator_is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """Whether ``node`` carries ``@dataclass(frozen=True)`` (any alias)."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.split(".")[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def self_attribute_target(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is an assignment target of form ``self.attr``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
