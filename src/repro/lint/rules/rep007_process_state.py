"""REP007: process-dependent state in worker-imported modules.

The execution substrate (engines, steppers, the pool, the spec layer,
the RNG) is imported by every worker process, and its results must be
a pure function of the request.  Two things silently break that:

* **Wall-clock reads** (``time.time``/``perf_counter``/``monotonic``,
  ``datetime.now``...): any value derived from one differs per process
  and per run.  Timing belongs in the benchmark harness, outside the
  substrate.
* **Module-level mutable globals** (dicts/lists/sets at top level):
  each process gets its own copy, warmed differently, so anything
  result-affecting that reads one is process-dependent -- and even
  innocent caches bloat or skew if they leak into pickles.  Registries
  populated once at import time and pure memo caches are the sanctioned
  exceptions; each carries a suppression saying which it is.

Scope: ``repro/fastpath``, ``repro/core``, ``repro/parallel``,
``repro/api``, ``repro/sync``, ``repro/variants``, ``repro/rng.py``.
``__all__`` and annotation-only declarations are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import ImportMap, call_name

RULE_ID = "REP007"

_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

_MUTABLE_CONSTRUCTORS = frozenset(
    {"dict", "list", "set", "bytearray", "collections.defaultdict",
     "collections.OrderedDict", "collections.Counter", "collections.deque"}
)

_EXEMPT_GLOBAL_NAMES = frozenset({"__all__"})


def _is_mutable_initialiser(value: ast.AST, imports: ImportMap) -> bool:
    if isinstance(
        value, (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp)
    ):
        return True
    if isinstance(value, ast.Call):
        name = call_name(value, imports)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    imports = ImportMap(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = call_name(node, imports)
            if name in _WALL_CLOCK_CALLS:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=RULE_ID,
                        message=(
                            f"wall-clock read {name}() in a worker-imported "
                            f"module; results must be a pure function of the "
                            f"request -- move timing to the bench harness"
                        ),
                    )
                )
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        else:
            continue
        if not _is_mutable_initialiser(value, imports):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id not in _EXEMPT_GLOBAL_NAMES:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=node.lineno,
                        col=node.col_offset + 1,
                        rule=RULE_ID,
                        message=(
                            f"module-level mutable global {target.id!r} in a "
                            f"worker-imported module is per-process state; "
                            f"make it immutable (tuple/MappingProxyType) or "
                            f"justify it as an import-time registry or pure "
                            f"memo cache"
                        ),
                    )
                )
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="process-state",
        summary=(
            "wall-clock reads or module-level mutable globals in "
            "worker-imported modules (engines, steppers, pool, spec, RNG)"
        ),
        check=check,
        scope=(
            "repro/api",
            "repro/core",
            "repro/fastpath",
            "repro/parallel",
            "repro/rng.py",
            "repro/sync",
            "repro/variants",
        ),
    )
)
