"""REP201: every ``FloodSpec`` field flows into ``digest()`` or is excluded.

The cache-aliasing bug class.  The result cache keys on the spec
digest; a dataclass field that never reaches the ``digest()`` payload
makes two *different* requests share one cache entry, and the second
silently gets the first's answer.  PR 8 shipped the one sanctioned
exception -- ``cache`` is a transport policy, not an input -- and the
exception lives in an explicit ``DIGEST_EXCLUDED`` frozenset next to
the class, which this rule reads.  Adding a field without routing it
into the digest (or consciously excluding it with a reason on the
frozenset) is a finding at the field's declaration.

The frozenset is also held honest both ways: an entry naming a
non-existent field is stale, and an entry naming a field the digest
*does* read is a contradiction -- both are findings at the frozenset.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext
from repro.lint.registry import ProjectRule, register_project_rule

RULE_ID = "REP201"


def check(ctx: ProjectContext) -> Iterable[Finding]:
    spec = ctx.spec
    if spec is None or not spec.has_digest:
        return []
    findings: List[Finding] = []
    digest_fields = set(spec.digest_fields)
    excluded = set(spec.digest_excluded)
    for field_name, line in sorted(spec.fields.items()):
        if field_name in digest_fields or field_name in excluded:
            continue
        findings.append(
            Finding(
                path=spec.path,
                line=line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"FloodSpec field {field_name!r} reaches neither the "
                    "digest() payload nor DIGEST_EXCLUDED; two specs "
                    "differing only in it would alias one cache entry"
                ),
            )
        )
    for field_name in sorted(excluded):
        if field_name not in spec.fields:
            findings.append(
                Finding(
                    path=spec.path,
                    line=spec.digest_excluded_line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"DIGEST_EXCLUDED names {field_name!r}, which is "
                        "not a FloodSpec field; remove the stale entry"
                    ),
                )
            )
        elif field_name in digest_fields:
            findings.append(
                Finding(
                    path=spec.path,
                    line=spec.digest_excluded_line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"DIGEST_EXCLUDED names {field_name!r}, but "
                        "digest() reads it; drop the contradictory entry"
                    ),
                )
            )
    return findings


register_project_rule(
    ProjectRule(
        rule_id=RULE_ID,
        name="digest-coverage",
        summary=(
            "a FloodSpec field is missing from both the digest() payload "
            "and DIGEST_EXCLUDED"
        ),
        check=check,
    )
)
