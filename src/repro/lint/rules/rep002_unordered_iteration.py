"""REP002: iterating sets in result-producing code.

CPython iterates a ``set``/``frozenset`` in hash order, which for str
(or str-containing) elements changes with ``PYTHONHASHSEED`` -- so any
result built by walking a set can differ between the service process
and its workers.  This was the PR 1 class of bug: the engines now route
every node walk through ``sort_nodes()``.  The rule binds only to the
result-producing packages (fastpath, core, api, parallel, analysis,
variants); viz/apps/experiments output is allowed to be cosmetic.

Flagged: ``for x in S``, comprehension iteration over ``S``, and
``list(S)``/``tuple(S)``/``enumerate(S)`` where ``S`` is syntactically
a set -- a set literal/comprehension, a ``set()``/``frozenset()`` call,
``graph.neighbors(...)`` (the package's frozenset API), set algebra on
a known set, or a local variable assigned from one of those.

Not flagged: iteration wrapped in ``sorted()``/``sort_nodes()``, set
comprehensions (their output is itself unordered, so generator order
is unobservable), comprehensions feeding an order-free call
(``sorted``/``set``/``min``...), and order-free consumption
(``len``/``min``/``max``/``sum``/``any``/``all``/membership --
these are never iteration sites).  Dict iteration is *not*
flagged: CPython dicts iterate in insertion order, so a dict built
deterministically iterates deterministically -- the package's
sorted-adjacency maps rely on exactly that.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import (
    ORDER_FREE_CALLS,
    is_ordering_call,
    is_set_expression,
)

RULE_ID = "REP002"

_ORDER_SENSITIVE_CONSTRUCTORS = ("list", "tuple", "enumerate")


class _ScopeVisitor(ast.NodeVisitor):
    """Per-function (or module top-level) set tracking and iteration checks.

    Nested function/class definitions open fresh scopes: their locals
    are tracked independently, and outer tracked names are *not*
    visible inside them (a closure rebinding would defeat the simple
    name tracking; missing a closure case costs a false negative, never
    a false positive).
    """

    def __init__(self, ctx: FileContext, findings: List[Finding]) -> None:
        self.ctx = ctx
        self.findings = findings
        self.set_names: Set[str] = set()
        # Comprehensions whose entire output feeds an order-free
        # consumer (sorted()/set()/min()...): their generators may walk
        # sets freely.  Keyed by id() -- populated by visit_Call before
        # generic_visit descends into the argument.
        self.order_free_comprehensions: Set[int] = set()

    # -- scope boundaries ------------------------------------------------

    def _visit_new_scope(self, node: ast.AST) -> None:
        nested = _ScopeVisitor(self.ctx, self.findings)
        for child in ast.iter_child_nodes(node):
            nested.visit(child)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_new_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_new_scope(node)

    # -- assignment tracking ---------------------------------------------

    def _track_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if isinstance(target, ast.Name):
            if is_set_expression(value, self.set_names):
                self.set_names.add(target.id)
            else:
                self.set_names.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._track_assignment(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._track_assignment(node.target, node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # `s |= other` keeps a tracked set tracked; anything else on a
        # tracked name is still the same object, so leave tracking alone.
        self.generic_visit(node)

    # -- iteration sites -------------------------------------------------

    def _check_iter(self, iter_node: ast.AST) -> None:
        if is_ordering_call(iter_node):
            return
        if is_set_expression(iter_node, self.set_names):
            described = (
                f"set {iter_node.id!r}"
                if isinstance(iter_node, ast.Name)
                else "a set expression"
            )
            self.findings.append(
                Finding(
                    path=self.ctx.path,
                    line=iter_node.lineno,
                    col=iter_node.col_offset + 1,
                    rule=RULE_ID,
                    message=(
                        f"iteration over {described} is hash-ordered and "
                        f"varies with PYTHONHASHSEED; wrap in sorted()/"
                        f"sort_nodes() or restructure onto an ordered "
                        f"container"
                    ),
                )
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        # A set comprehension's output is itself unordered, so the
        # order its generators walk in cannot be observed; likewise any
        # comprehension whose whole result feeds an order-free call.
        # Dict/list comprehensions keep insertion order, so walking a
        # set inside one *does* leak hash order downstream.
        exempt = isinstance(node, ast.SetComp) or (
            id(node) in self.order_free_comprehensions
        )
        if not exempt:
            for comp in node.generators:  # type: ignore[attr-defined]
                self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name):
            if node.func.id in _ORDER_SENSITIVE_CONSTRUCTORS and node.args:
                self._check_iter(node.args[0])
            if node.func.id in ORDER_FREE_CALLS:
                for arg in node.args:
                    if isinstance(
                        arg, (ast.ListComp, ast.SetComp, ast.GeneratorExp)
                    ):
                        self.order_free_comprehensions.add(id(arg))
        self.generic_visit(node)


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    visitor = _ScopeVisitor(ctx, findings)
    for child in ast.iter_child_nodes(tree):
        visitor.visit(child)
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="unordered-iteration",
        summary=(
            "hash-ordered set iteration in result-producing code; order "
            "varies with PYTHONHASHSEED"
        ),
        check=check,
        scope=(
            "repro/analysis",
            "repro/api",
            "repro/core",
            "repro/fastpath",
            "repro/parallel",
            "repro/variants",
        ),
    )
)
