"""REP004: memo caches riding worker pickles.

A class that memoises into instance attributes (``self._send_cache``,
``self._numpy_arrays``, ``self._hash``) pickles those attributes by
default -- so a warm object ships its process-local cache into every
worker, bloating payloads and, for anything hash-derived, shipping
*wrong* values (the PR 2 ``IndexedGraph`` issue).  Any class that both
defines cache-named attributes and can be pickled must strip them in
``__getstate__``/``__reduce__``.

Flagged: a class that assigns ``self.<name>`` (or lists ``<name>`` in
``__slots__``) where ``<name>`` looks like a cache (``_*cache*``,
``_*memo*``, or exactly ``_hash``) and defines none of the pickle
protocol methods.  Classes that are never pickled (service internals,
live visualisations) suppress with a justification saying so.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import iter_class_methods, self_attribute_target

RULE_ID = "REP004"

_CACHE_NAME_RE = re.compile(r"^_.*(cache|memo)", re.IGNORECASE)

_PICKLE_PROTOCOL_METHODS = ("__getstate__", "__reduce__", "__reduce_ex__")


def _is_cache_name(name: str) -> bool:
    return name == "_hash" or bool(_CACHE_NAME_RE.match(name))


def _slots_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for node in cls.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "__slots__"):
            continue
        for element in ast.walk(node.value):
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                names.add(element.value)
    return names


def _check_class(cls: ast.ClassDef, ctx: FileContext, findings: List[Finding]) -> None:
    if any(
        name in _PICKLE_PROTOCOL_METHODS for name, _ in iter_class_methods(cls)
    ):
        return
    cache_attrs: Set[str] = {name for name in _slots_names(cls) if _is_cache_name(name)}
    for _, method in iter_class_methods(cls):
        for node in ast.walk(method):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = self_attribute_target(target)
                    if attr is not None and _is_cache_name(attr):
                        cache_attrs.add(attr)
    if cache_attrs:
        listed = ", ".join(sorted(cache_attrs))
        findings.append(
            Finding(
                path=ctx.path,
                line=cls.lineno,
                col=cls.col_offset + 1,
                rule=RULE_ID,
                message=(
                    f"class {cls.name} memoises into {listed} but defines no "
                    f"__getstate__/__reduce__; default pickling ships the "
                    f"process-local cache into workers -- strip it (see "
                    f"IndexedGraph.__getstate__) or justify that instances "
                    f"are never pickled"
                ),
            )
        )


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            _check_class(node, ctx, findings)
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="pickled-caches",
        summary=(
            "cache/memo attributes with no __getstate__/__reduce__ to strip "
            "them from worker pickles"
        ),
        check=check,
    )
)
