"""REP006: hard-coded round/step budget defaults.

PR 1 and PR 4 both shipped fixes for the same drift: one entry point
defaulting ``max_rounds=400`` while another used the graph-scaled
``default_round_budget``, so "the same" flood terminated on one path
and was cut off on the other.  The contract since PR 4/5: a budget
parameter defaults to ``None`` and resolves through
``repro.sync.engine.default_round_budget`` (rounds) or
``repro.variants.random_delay.default_step_budget`` (async steps), in
exactly one place per entry point.

Flagged: a function parameter named like a budget (``max_rounds``,
``max_steps``, ``*_round_budget``, ``*_step_budget``) whose default is
an integer literal.  ``None`` defaults (resolve-later) and required
parameters are clean.  A pinned literal that is genuinely part of a
reproduced artefact (a paper figure's published budget) suppresses
with a justification saying which artefact pins it.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule

RULE_ID = "REP006"

_BUDGET_PARAM_RE = re.compile(r"^(max_rounds|max_steps|(\w+_)?(round|step)_budget)$")


def _check_function(
    func: ast.AST, ctx: FileContext, findings: List[Finding]
) -> None:
    arguments = func.args  # type: ignore[attr-defined]
    positional = [*arguments.posonlyargs, *arguments.args]
    pos_defaults = arguments.defaults
    # Defaults align right: the last len(defaults) positional args have them.
    defaulted = positional[len(positional) - len(pos_defaults):]
    pairs = list(zip(defaulted, pos_defaults))
    pairs.extend(
        (arg, default)
        for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults)
        if default is not None
    )
    for arg, default in pairs:
        if not _BUDGET_PARAM_RE.match(arg.arg):
            continue
        if isinstance(default, ast.Constant) and isinstance(default.value, int):
            if isinstance(default.value, bool):
                continue
            findings.append(
                Finding(
                    path=ctx.path,
                    line=default.lineno,
                    col=default.col_offset + 1,
                    rule=RULE_ID,
                    message=(
                        f"integer-literal default {arg.arg}={default.value} "
                        f"drifts from the graph-scaled budget rule; default "
                        f"to None and resolve via default_round_budget/"
                        f"default_step_budget"
                    ),
                )
            )


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            _check_function(node, ctx, findings)
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="literal-budgets",
        summary=(
            "integer-literal round/step budget defaults instead of the "
            "graph-scaled default_round_budget/default_step_budget"
        ),
        check=check,
    )
)
