"""REP301: every registered scenario and backend sits in the
equivalence matrix.

ROADMAP discipline: "every new path lands inside the bit-identical
matrix".  The cross-backend equivalence suites under ``tests/`` are
what makes a scenario or backend *trustworthy* -- a registered name
that no equivalence parametrization exercises is a path whose
bit-identity nobody checks, and it stays silently unchecked until it
diverges in production.

Coverage is judged against the matrix positions only (module-level
sequence assignments and ``parametrize`` arguments in
``tests/**/*equivalence*.py`` -- see
:func:`repro.lint.project._extract_equivalence_strings`): a scenario
string used as a helper argument deep inside a test body is a *use*,
not a matrix row.  A scenario ``name`` is covered by the exact string
or any parameterised form ``name:...``; a backend must appear exactly.
Findings attach to the registration site (the ``register_scenario``
call, the ``BACKEND_NAMES`` tuple), because that is where the
uncovered path was introduced.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext
from repro.lint.registry import ProjectRule, register_project_rule

RULE_ID = "REP301"


def check(ctx: ProjectContext) -> Iterable[Finding]:
    if not ctx.equivalence_files:
        return []  # no matrix to be in; the canary test pins non-absence
    findings: List[Finding] = []
    strings = set(ctx.equivalence_strings)
    prefixes = {s.split(":", 1)[0] for s in strings}
    for scenario in ctx.scenarios:
        if scenario.value in strings or scenario.value in prefixes:
            continue
        findings.append(
            Finding(
                path=scenario.path,
                line=scenario.line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"scenario {scenario.value!r} is registered but appears "
                    "in no equivalence-matrix parametrization under tests/; "
                    "its bit-identity is unchecked"
                ),
            )
        )
    for backend in ctx.backends:
        if backend.value in strings:
            continue
        findings.append(
            Finding(
                path=backend.path,
                line=backend.line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"backend {backend.value!r} is registered but appears "
                    "in no equivalence-matrix parametrization under tests/; "
                    "its bit-identity is unchecked"
                ),
            )
        )
    return findings


register_project_rule(
    ProjectRule(
        rule_id=RULE_ID,
        name="matrix-coverage",
        summary=(
            "a registered scenario or backend appears in no "
            "equivalence-matrix parametrization"
        ),
        check=check,
    )
)
