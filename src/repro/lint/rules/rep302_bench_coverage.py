"""REP302: every trajectory-scoped bench family has a committed row.

``BENCH_fastpath.json`` is the perf trajectory future PRs diff against;
a ``test_ext_*`` benchmark that matches ``run_bench.py``'s
``FASTPATH_PREFIXES`` but has no row in the committed file is a perf
surface with no baseline -- its first regression is invisible because
there is nothing to diff.  The escape hatch is declarative, like the
spec-coverage frozensets: ``run_bench.py`` may list always-skipped or
environment-gated families in a ``TRAJECTORY_OPTIONAL`` tuple, and the
tuple is held honest (an entry matching no defined family is stale).

Rows are matched by family: the committed ``benchmark`` names are
stripped of their ``[param]`` suffix, so one row covers the whole
parametrization.  Findings attach to the benchmark definition (missing
row) or the ``TRAJECTORY_OPTIONAL`` assignment (stale entry).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.lint.findings import Finding
from repro.lint.project import ProjectContext
from repro.lint.registry import ProjectRule, register_project_rule

RULE_ID = "REP302"


def check(ctx: ProjectContext) -> Iterable[Finding]:
    bench = ctx.bench
    if bench is None or not bench.trajectory_present:
        return []
    findings: List[Finding] = []
    committed = set(bench.trajectory_families)
    optional = set(bench.optional)
    family_names = {family.value for family in bench.families}
    for family in bench.families:
        if family.value in committed or family.value in optional:
            continue
        findings.append(
            Finding(
                path=family.path,
                line=family.line,
                col=1,
                rule=RULE_ID,
                message=(
                    f"bench family {family.value!r} matches the trajectory "
                    "prefixes but has no row in BENCH_fastpath.json; "
                    "regenerate the trajectory or declare it in "
                    "TRAJECTORY_OPTIONAL"
                ),
            )
        )
    for name in sorted(optional):
        if name not in family_names:
            findings.append(
                Finding(
                    path=bench.runner_path,
                    line=bench.optional_line,
                    col=1,
                    rule=RULE_ID,
                    message=(
                        f"TRAJECTORY_OPTIONAL names {name!r}, which matches "
                        "no defined bench family; remove the stale entry"
                    ),
                )
            )
    return findings


register_project_rule(
    ProjectRule(
        rule_id=RULE_ID,
        name="bench-coverage",
        summary=(
            "a trajectory-scoped bench family has no row in "
            "BENCH_fastpath.json and no TRAJECTORY_OPTIONAL entry"
        ),
        check=check,
    )
)
