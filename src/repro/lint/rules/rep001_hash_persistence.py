"""REP001: builtin ``hash()`` escaping the process.

Python salts string (and bytes, and anything containing them) hashing
per interpreter via ``PYTHONHASHSEED``, so the value of ``hash(x)`` is
only meaningful *inside* the process that computed it.  This rule flags
the three ways such a value can leak into cross-process state -- the
exact shape of the PR 5 ``Graph._hash`` bug, where a memoised
``hash(frozenset(...))`` rode a pickle into worker processes as a
wrong-in-that-process cached value:

* ``self.attr = ... hash(...) ...`` in a class that either defines no
  ``__getstate__``/``__reduce__`` (default pickling ships every
  attribute) or whose ``__getstate__`` mentions the attribute (it is
  explicitly shipped).  A class whose ``__getstate__`` omits the
  attribute strips it from pickles, which is the sanctioned memoisation
  pattern -- that is why the fixed ``Graph`` does not fire.
* ``hash(...)`` appearing anywhere inside a ``__getstate__`` /
  ``__reduce__`` / ``__reduce_ex__`` body.
* ``hash(...)`` flowing into digest or key-derivation construction:
  an argument (at any depth) of a ``hashlib.*`` call or of a call whose
  name mentions ``digest``.  Cross-process identities must be built
  from process-stable bytes (see ``FloodSpec.digest()``), never from
  the salted builtin hash.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register_rule
from repro.lint.rules.common import (
    ImportMap,
    call_name,
    contains_call,
    iter_class_methods,
    self_attribute_target,
)

RULE_ID = "REP001"

_PICKLE_PROTOCOL_METHODS = ("__getstate__", "__reduce__", "__reduce_ex__")


def _getstate_mentions(cls: ast.ClassDef, attr: str) -> bool:
    """Whether any pickle-protocol method of ``cls`` references ``attr``."""
    for name, method in iter_class_methods(cls):
        if name not in _PICKLE_PROTOCOL_METHODS:
            continue
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute) and node.attr == attr:
                return True
            if isinstance(node, ast.Constant) and node.value == attr:
                return True
    return False


def _class_defines_pickle_protocol(cls: ast.ClassDef) -> bool:
    return any(name in _PICKLE_PROTOCOL_METHODS for name, _ in iter_class_methods(cls))


def _digest_sink_findings(
    tree: ast.Module, ctx: FileContext, imports: ImportMap
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = call_name(node, imports)
        if name is None:
            continue
        is_sink = name.startswith("hashlib.") or "digest" in name.split(".")[-1].lower()
        if not is_sink:
            continue
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            hash_call = contains_call(arg, "hash")
            if hash_call is not None:
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=hash_call.lineno,
                        col=hash_call.col_offset + 1,
                        rule=RULE_ID,
                        message=(
                            f"builtin hash() feeds the digest/key construction "
                            f"{name}(); hash() is salted per process "
                            f"(PYTHONHASHSEED) -- build identities from "
                            f"process-stable bytes instead"
                        ),
                    )
                )
    return findings


def _stored_attribute_findings(cls: ast.ClassDef, ctx: FileContext) -> List[Finding]:
    findings: List[Finding] = []
    has_pickle_protocol = _class_defines_pickle_protocol(cls)
    flagged_attrs: Set[str] = set()
    for method_name, method in iter_class_methods(cls):
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                if node.value is None:
                    continue
                targets, value = [node.target], node.value
            else:
                continue
            hash_call = contains_call(value, "hash")
            if hash_call is None:
                continue
            for target in targets:
                attr = self_attribute_target(target)
                if attr is None or attr in flagged_attrs:
                    continue
                shipped = (not has_pickle_protocol) or _getstate_mentions(cls, attr)
                if not shipped:
                    continue
                flagged_attrs.add(attr)
                how = (
                    f"__getstate__ ships it"
                    if has_pickle_protocol
                    else "default pickling ships every attribute"
                )
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=hash_call.lineno,
                        col=hash_call.col_offset + 1,
                        rule=RULE_ID,
                        message=(
                            f"builtin hash() stored in self.{attr} of class "
                            f"{cls.name} would ride pickles into other "
                            f"processes ({how}); hash() is salted per process "
                            f"(PYTHONHASHSEED) -- strip the attribute in "
                            f"__getstate__ (the Graph._hash fix) or derive a "
                            f"process-stable value"
                        ),
                    )
                )
    for method_name, method in iter_class_methods(cls):
        if method_name not in _PICKLE_PROTOCOL_METHODS:
            continue
        hash_call = contains_call(method, "hash")
        if hash_call is not None:
            findings.append(
                Finding(
                    path=ctx.path,
                    line=hash_call.lineno,
                    col=hash_call.col_offset + 1,
                    rule=RULE_ID,
                    message=(
                        f"builtin hash() inside {cls.name}.{method_name} puts a "
                        f"per-process salted value into pickled state"
                    ),
                )
            )
    return findings


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    imports = ImportMap(tree)
    findings = _digest_sink_findings(tree, ctx, imports)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            findings.extend(_stored_attribute_findings(node, ctx))
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="hash-persistence",
        summary=(
            "builtin hash() flowing into pickled attributes or digest "
            "construction (salted per process by PYTHONHASHSEED)"
        ),
        check=check,
    )
)
