"""REP102: an ``await`` between registering a future and protecting it.

Companion to REP101.  Registering a pending future into a shared table
publishes it: from that statement on, other coroutines can join it and
depend on its settlement.  An ``await`` in the gap between the
registration and the start of the structure that guarantees settlement
(the covering ``try``, or the settle/hand-off itself) is a suspension
point where a cancellation or timeout can abandon the coroutine *while
the table already holds the future* -- the guard never runs and the
joiners hang.  ``service.query_spec`` registers and enters its guarded
``try`` on adjacent statements for exactly this reason.

Flagged: every ``await`` expression lexically strictly between a
future's first registration and its first protection point within the
same function scope.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from repro.lint.findings import Finding
from repro.lint.flow import (
    FunctionNode,
    FutureFlow,
    future_flows,
    iter_functions,
    scope_tries,
    try_body_span,
    uncovered_handlers,
    walk_scope,
)
from repro.lint.registry import FileContext, Rule, register_rule

RULE_ID = "REP102"


def _protection_line(func: FunctionNode, flow: FutureFlow) -> Optional[int]:
    """The first line at/after registration where settlement is assured.

    Candidates: the first settle, the first hand-off, and the start of
    the first ``try`` whose body overlaps the at-risk window and whose
    every handler covers the future.  ``None`` when nothing protects it
    (then REP101 already owns the complaint; no window to measure).
    """
    first_registration = flow.first_registration()
    if first_registration is None:
        return None
    candidates: List[int] = []
    candidates.extend(
        line for line in flow.settles if line >= first_registration
    )
    candidates.extend(
        line for line in flow.handoffs if line >= first_registration
    )
    for try_node in scope_tries(func):
        body_start, body_end = try_body_span(try_node)
        if body_end < first_registration or body_start > flow.end_line():
            continue
        if not uncovered_handlers(try_node, flow.name):
            candidates.append(try_node.lineno)
    return min(candidates) if candidates else None


def check(tree: ast.Module, ctx: FileContext) -> Iterable[Finding]:
    findings: List[Finding] = []
    for func in iter_functions(tree):
        flows = [
            flow
            for flow in future_flows(func)
            if flow.first_registration() is not None
        ]
        if not flows:
            continue
        awaits = [
            node for node in walk_scope(func) if isinstance(node, ast.Await)
        ]
        for flow in flows:
            registration = flow.first_registration()
            assert registration is not None
            protection = _protection_line(func, flow)
            if protection is None:
                continue
            for node in awaits:
                if registration < node.lineno < protection:
                    findings.append(
                        Finding(
                            path=ctx.path,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            rule=RULE_ID,
                            message=(
                                f"await between registering future "
                                f"{flow.name!r} (line {registration}) and "
                                f"its settlement guard (line {protection}); "
                                "a cancellation here abandons the "
                                "registered future -- register immediately "
                                "before the guarded block"
                            ),
                        )
                    )
    return findings


register_rule(
    Rule(
        rule_id=RULE_ID,
        name="await-in-window",
        summary=(
            "an await sits between a pending-future registration and its "
            "settlement guard"
        ),
        check=check,
    )
)
