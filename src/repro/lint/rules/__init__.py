"""The built-in rule set.

Importing this package registers every built-in rule with
:mod:`repro.lint.registry` (each module calls ``register_rule`` at
import time).  Report order never depends on this import order -- the
registry sorts by rule id -- but the explicit list keeps the rule set
greppable and the imports deliberate.
"""

from repro.lint.rules import (  # noqa: F401
    rep001_hash_persistence,
    rep002_unordered_iteration,
    rep003_rng_discipline,
    rep004_pickled_caches,
    rep005_frozen_mutation,
    rep006_literal_budgets,
    rep007_process_state,
    rep101_unsettled_futures,
    rep102_await_in_window,
    rep103_blocking_async,
    rep201_digest_coverage,
    rep202_batch_key_coverage,
    rep301_matrix_coverage,
    rep302_bench_coverage,
)
