"""Baseline files: adopt-then-ratchet support.

A baseline is a JSON list of known findings, keyed ``(path, line,
rule)``.  ``--baseline FILE`` subtracts its entries from a run so a
tree can adopt the analyzer before burning every finding down;
``--write-baseline FILE`` snapshots the current findings.  This repo's
policy (see docs/determinism.md) is a *permanently empty* baseline --
the flag exists for downstream forks and for the round-trip tests --
so the committed tree must lint clean with no baseline at all.

The file format is sorted and newline-terminated, so regenerating a
baseline on an unchanged tree is a byte-identical no-op.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Set, Tuple

from repro.lint.findings import Finding, sort_findings

BASELINE_VERSION = 1

BaselineKey = Tuple[str, int, str]


def baseline_key(finding: Finding) -> BaselineKey:
    return (finding.path, finding.line, finding.rule)


def render_baseline(findings: Sequence[Finding]) -> str:
    """Serialise findings into baseline-file text (stable ordering)."""
    entries = [
        {"path": f.path, "line": f.line, "rule": f.rule, "message": f.message}
        for f in sort_findings(findings)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_baseline(findings))


def load_baseline(path: str) -> Set[BaselineKey]:
    """Load the set of baselined finding keys from ``path``.

    Raises ``ValueError`` on malformed files (a corrupt baseline that
    silently suppressed nothing -- or everything -- would be worse).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path!r}: expected a version-{BASELINE_VERSION} baseline file"
        )
    entries = payload.get("findings")
    if not isinstance(entries, list):
        raise ValueError(f"baseline {path!r}: 'findings' must be a list")
    keys: Set[BaselineKey] = set()
    for entry in entries:
        try:
            keys.add((entry["path"], int(entry["line"]), entry["rule"]))
        except (TypeError, KeyError) as exc:
            raise ValueError(f"baseline {path!r}: malformed entry {entry!r}") from exc
    return keys


def apply_baseline(
    findings: Sequence[Finding], baselined: Set[BaselineKey]
) -> List[Finding]:
    """Drop findings present in the baseline (REP000 hygiene included --
    a baseline may adopt bad suppressions during a migration)."""
    return [f for f in findings if baseline_key(f) not in baselined]
