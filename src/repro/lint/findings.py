"""The finding value type shared by every layer of the analyzer.

A :class:`Finding` is one diagnostic at one source location.  It is a
frozen dataclass so rule visitors can emit them freely and the walker
can dedupe/sort without copying.  The canonical ordering -- ``(path,
line, col, rule)`` -- is *the* output order of the analyzer: the CLI,
the JSON report and the baseline all sort by :func:`sort_findings`, so
two runs over the same tree emit byte-identical reports regardless of
``PYTHONHASHSEED``, directory walk order, or rule registration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Union


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule firing at a source location.

    ``path`` is stored with POSIX separators relative to the lint
    invocation root, so reports are stable across operating systems and
    absolute-path prefixes.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def location(self) -> str:
        """``path:line:col`` -- the clickable prefix of the text report."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, Union[str, int]]:
        """The JSON-report projection (kept flat for easy diffing)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deduplicate and sort findings into the canonical report order."""
    unique = set(findings)
    return sorted(unique, key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
