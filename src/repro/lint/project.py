"""The project-level analysis context and its one-pass builder.

The per-file rules (REP001-REP103) see one AST at a time; the contract
rules (REP201-REP302) check invariants that *span* modules -- every
``FloodSpec`` field flows into ``digest()`` or a declared exclusion,
every registered scenario appears in the equivalence matrix, every
trajectory bench family has a committed row.  :class:`ProjectContext`
is everything those rules need, built **once** per lint run:

* per-module ASTs of ``src/repro`` (sorted walk, parsed once),
* the import graph over the package (module -> imported repro modules),
* the extracted registries: scenario strings (top-level
  ``register_scenario("name", ...)`` calls), backend names (the
  ``BACKEND_NAMES`` tuple), the ``FloodSpec`` field/coverage tables
  (dataclass fields, ``digest()``/``batch_key()`` field references,
  the ``DIGEST_EXCLUDED``/``BATCH_KEY_EXCLUDED`` frozensets),
* the equivalence-matrix string constants under ``tests/`` (module
  names containing ``equivalence``; module-level sequence literals and
  ``pytest.mark.parametrize`` arguments only, so a variant *kind*
  string deep inside a helper call does not count as matrix coverage),
* the bench-trajectory tables: the ``test_ext_*`` families defined in
  ``run_bench.py``'s ``BENCH_FILES`` and matching its
  ``FASTPATH_PREFIXES``, the declared ``TRAJECTORY_OPTIONAL`` names,
  and the row families committed in ``BENCH_fastpath.json``.

Everything is extracted by pattern, not by import: the analyzer never
executes project code, works on broken trees, and is a pure function
of the file bytes -- the same determinism contract as the file pass.
Missing inputs degrade each extraction to "absent" (``None``/empty),
and each project rule no-ops on absent input; the real tree's
extractions are pinned non-absent by ``tests/lint`` canary tests, so
absence tolerance cannot silently disable a rule on this repo.

Findings from project rules report paths **relative to the project
root** with POSIX separators (``src/repro/api/spec.py``), so reports
are byte-identical regardless of how the target path was spelled.
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding, sort_findings
from repro.lint.registry import all_project_rules
from repro.lint.suppress import apply_suppressions, parse_suppressions


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module of the project under analysis."""

    path: str  # project-root-relative POSIX path
    module: str  # dotted module name (repro.api.spec)
    tree: ast.Module
    source_lines: Tuple[str, ...]


@dataclass(frozen=True)
class RegisteredName:
    """A name extracted from a registry, with the line that declared it."""

    value: str
    path: str
    line: int


@dataclass(frozen=True)
class SpecCoverage:
    """The ``FloodSpec`` field/coverage tables for REP201/REP202.

    ``fields`` maps each dataclass field to its declaration;
    ``digest_fields``/``batch_key_fields`` are the ``self.<field>``
    names referenced inside ``digest()``/``batch_key()``;
    ``digest_excluded``/``batch_key_excluded`` are the declared
    exclusion frozensets (empty when the assignment is absent), with
    ``*_line`` pointing at the frozenset assignment for findings about
    stale or contradicted entries.
    """

    path: str
    fields: Dict[str, int]
    digest_fields: Tuple[str, ...]
    batch_key_fields: Tuple[str, ...]
    digest_excluded: Tuple[str, ...]
    digest_excluded_line: int
    batch_key_excluded: Tuple[str, ...]
    batch_key_excluded_line: int
    has_digest: bool
    has_batch_key: bool


@dataclass(frozen=True)
class BenchCoverage:
    """The bench-trajectory tables for REP302."""

    runner_path: str
    families: Tuple[RegisteredName, ...]  # in-scope test_ext_* definitions
    optional: Tuple[str, ...]
    optional_line: int
    trajectory_families: Tuple[str, ...]  # BENCH_fastpath.json row families
    trajectory_present: bool


@dataclass(frozen=True)
class ProjectContext:
    """Everything a :class:`~repro.lint.registry.ProjectRule` may consult."""

    root: str
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    import_graph: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    scenarios: Tuple[RegisteredName, ...] = ()
    backends: Tuple[RegisteredName, ...] = ()
    spec: Optional[SpecCoverage] = None
    equivalence_strings: Tuple[str, ...] = ()
    equivalence_files: Tuple[str, ...] = ()
    bench: Optional[BenchCoverage] = None

    def module_by_path(self, path: str) -> Optional[ModuleInfo]:
        for info in self.modules.values():
            if info.path == path:
                return info
        return None


# ---------------------------------------------------------------------------
# Root discovery
# ---------------------------------------------------------------------------


def find_project_root(paths: Sequence[str]) -> Optional[str]:
    """The nearest ancestor of any target path holding a ``src/repro`` tree.

    ``python -m repro.lint src`` from the repo root resolves to the
    repo root; an absolute file target resolves identically.  ``None``
    (no such ancestor) disables the project pass -- fixture trees
    without the layout simply run the file rules.
    """
    for path in paths:
        current = os.path.abspath(path)
        if os.path.isfile(current):
            current = os.path.dirname(current)
        while True:
            if os.path.isdir(os.path.join(current, "src", "repro")):
                return current
            parent = os.path.dirname(current)
            if parent == current:
                break
            current = parent
    return None


# ---------------------------------------------------------------------------
# Extraction helpers
# ---------------------------------------------------------------------------


def _parse_file(full_path: str) -> Optional[Tuple[ast.Module, Tuple[str, ...]]]:
    try:
        with open(full_path, "r", encoding="utf-8") as handle:
            source = handle.read()
        return ast.parse(source), tuple(source.splitlines())
    except (OSError, SyntaxError, ValueError):
        # Unreadable or unparseable files are the file pass's problem
        # (E999); the project pass extracts from what parses.
        return None


def _walk_python_files(base: str) -> List[str]:
    found: List[str] = []
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                found.append(os.path.join(dirpath, filename))
    return sorted(found)


def _rel(root: str, full_path: str) -> str:
    return os.path.relpath(full_path, root).replace(os.sep, "/")


def _string_elements(node: ast.AST) -> List[str]:
    """Every string constant anywhere inside ``node`` (tuples, lists,
    conditionals, concatenations -- matrix tables use them all)."""
    values: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            values.append(child.value)
    return values


def _tuple_assignment(
    tree: ast.Module, name: str
) -> Tuple[Optional[Tuple[str, ...]], int]:
    """A module-level ``NAME = (...str...)`` assignment's strings + line.

    Accepts tuple/list/set/frozenset literals of string constants (the
    registry tables in this repo are all one of those).  Returns
    ``(None, 0)`` when the assignment is absent.
    """
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == name):
            continue
        return tuple(_string_elements(node.value)), node.lineno
    return None, 0


def _self_field_reads(func: ast.AST) -> Tuple[str, ...]:
    """The ``self.<name>`` attributes read anywhere inside ``func``."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            names.add(node.attr)
    return tuple(sorted(names))


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name_parts: List[str] = []
        current: ast.AST = target
        while isinstance(current, ast.Attribute):
            name_parts.append(current.attr)
            current = current.value
        if isinstance(current, ast.Name):
            name_parts.append(current.id)
        if name_parts and name_parts[0] == "dataclass":
            return True
    return False


def _extract_spec(modules: Dict[str, ModuleInfo]) -> Optional[SpecCoverage]:
    for info in modules.values():
        for node in info.tree.body:
            if not isinstance(node, ast.ClassDef) or node.name != "FloodSpec":
                continue
            if not _is_dataclass_decorated(node):
                continue
            fields: Dict[str, int] = {}
            digest_fields: Tuple[str, ...] = ()
            batch_key_fields: Tuple[str, ...] = ()
            has_digest = has_batch_key = False
            for item in node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    annotation = ast.dump(item.annotation)
                    if "ClassVar" not in annotation:
                        fields[item.target.id] = item.lineno
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if item.name == "digest":
                        has_digest = True
                        digest_fields = _self_field_reads(item)
                    elif item.name == "batch_key":
                        has_batch_key = True
                        batch_key_fields = _self_field_reads(item)
            digest_excluded, digest_line = _tuple_assignment(
                info.tree, "DIGEST_EXCLUDED"
            )
            batch_excluded, batch_line = _tuple_assignment(
                info.tree, "BATCH_KEY_EXCLUDED"
            )
            return SpecCoverage(
                path=info.path,
                fields=fields,
                digest_fields=digest_fields,
                batch_key_fields=batch_key_fields,
                digest_excluded=digest_excluded or (),
                digest_excluded_line=digest_line,
                batch_key_excluded=batch_excluded or (),
                batch_key_excluded_line=batch_line,
                has_digest=has_digest,
                has_batch_key=has_batch_key,
            )
    return None


def _extract_scenarios(
    modules: Dict[str, ModuleInfo],
) -> Tuple[RegisteredName, ...]:
    names: List[RegisteredName] = []
    for info in modules.values():
        for node in info.tree.body:
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            callee = call.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if callee_name != "register_scenario" or not call.args:
                continue
            head = call.args[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                names.append(RegisteredName(head.value, info.path, node.lineno))
    return tuple(sorted(names, key=lambda n: (n.path, n.line, n.value)))


def _extract_backends(
    modules: Dict[str, ModuleInfo],
) -> Tuple[RegisteredName, ...]:
    for info in modules.values():
        values, line = _tuple_assignment(info.tree, "BACKEND_NAMES")
        if values is not None:
            return tuple(
                RegisteredName(value, info.path, line) for value in values
            )
    return ()


def _extract_equivalence_strings(
    root: str,
) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """Matrix-position string constants from ``tests/**/*equivalence*.py``.

    Only two positions count as "the matrix": module-level sequence
    assignments (``SCENARIOS = (...)``, ``BACKENDS = [...]``) and
    arguments of ``pytest.mark.parametrize(...)`` calls.  A scenario
    string buried in a helper call body is a *use*, not a matrix row.
    """
    tests_dir = os.path.join(root, "tests")
    if not os.path.isdir(tests_dir):
        return (), ()
    strings: Set[str] = set()
    files: List[str] = []
    for full_path in _walk_python_files(tests_dir):
        basename = os.path.basename(full_path)
        if "equivalence" not in basename:
            continue
        parsed = _parse_file(full_path)
        if parsed is None:
            continue
        tree, _ = parsed
        files.append(_rel(root, full_path))
        for node in tree.body:
            if isinstance(node, ast.Assign):
                strings.update(_string_elements(node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                strings.update(_string_elements(node.value))
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "parametrize"
            ):
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    strings.update(_string_elements(arg))
    return tuple(sorted(strings)), tuple(sorted(files))


def _extract_bench(root: str) -> Optional[BenchCoverage]:
    runner_full = os.path.join(root, "benchmarks", "run_bench.py")
    parsed = _parse_file(runner_full)
    if parsed is None:
        return None
    tree, _ = parsed
    runner_path = _rel(root, runner_full)
    bench_files, _ = _tuple_assignment(tree, "BENCH_FILES")
    prefixes, _ = _tuple_assignment(tree, "FASTPATH_PREFIXES")
    optional, optional_line = _tuple_assignment(tree, "TRAJECTORY_OPTIONAL")
    if bench_files is None or prefixes is None:
        return None
    families: List[RegisteredName] = []
    for name in bench_files:
        bench_full = os.path.join(root, "benchmarks", name)
        bench_parsed = _parse_file(bench_full)
        if bench_parsed is None:
            continue
        bench_tree, _ = bench_parsed
        bench_path = _rel(root, bench_full)
        for node in ast.walk(bench_tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and node.name.startswith(tuple(prefixes)):
                families.append(
                    RegisteredName(node.name, bench_path, node.lineno)
                )
    trajectory_full = os.path.join(root, "BENCH_fastpath.json")
    trajectory_present = os.path.isfile(trajectory_full)
    row_families: Set[str] = set()
    if trajectory_present:
        try:
            with open(trajectory_full, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            for row in payload.get("rows", []):
                name = row.get("benchmark")
                if isinstance(name, str):
                    row_families.add(name.split("[", 1)[0])
        except (OSError, ValueError):
            trajectory_present = False
    return BenchCoverage(
        runner_path=runner_path,
        families=tuple(sorted(families, key=lambda f: (f.path, f.line))),
        optional=optional or (),
        optional_line=optional_line,
        trajectory_families=tuple(sorted(row_families)),
        trajectory_present=trajectory_present,
    )


def _repro_imports(tree: ast.Module) -> Tuple[str, ...]:
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            if node.module == "repro" or node.module.startswith("repro."):
                imported.add(node.module)
    return tuple(sorted(imported))


# ---------------------------------------------------------------------------
# The builder and the project runner
# ---------------------------------------------------------------------------


def build_project(root: str) -> ProjectContext:
    """Parse and extract the whole-project context under ``root``.

    Deterministic end to end: sorted directory walks, sorted
    extraction tables, no environment reads.
    """
    package_dir = os.path.join(root, "src", "repro")
    modules: Dict[str, ModuleInfo] = {}
    import_graph: Dict[str, Tuple[str, ...]] = {}
    for full_path in _walk_python_files(package_dir):
        parsed = _parse_file(full_path)
        if parsed is None:
            continue
        tree, source_lines = parsed
        rel_path = _rel(root, full_path)
        dotted = (
            rel_path[len("src/"):]
            .replace(".py", "")
            .replace("/", ".")
        )
        if dotted.endswith(".__init__"):
            dotted = dotted[: -len(".__init__")]
        modules[dotted] = ModuleInfo(
            path=rel_path, module=dotted, tree=tree, source_lines=source_lines
        )
        import_graph[dotted] = _repro_imports(tree)
    equivalence_strings, equivalence_files = _extract_equivalence_strings(root)
    return ProjectContext(
        root=root,
        modules=modules,
        import_graph=import_graph,
        scenarios=_extract_scenarios(modules),
        backends=_extract_backends(modules),
        spec=_extract_spec(modules),
        equivalence_strings=equivalence_strings,
        equivalence_files=equivalence_files,
        bench=_extract_bench(root),
    )


def _apply_project_suppressions(
    root: str, findings: List[Finding]
) -> List[Finding]:
    """Honour per-line ``# repro-lint: disable=`` comments on the lines
    project findings attach to.

    Unlike the file pass, no hygiene findings are emitted here: the
    file pass owns REP000 for every linted file, and re-parsing would
    double-report; files outside the lint targets (tests, benchmarks)
    get suppression *power* without hygiene enforcement.
    """
    by_path: Dict[str, List[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    kept: List[Finding] = []
    for path, group in by_path.items():
        full_path = os.path.join(root, path)
        try:
            with open(full_path, "r", encoding="utf-8") as handle:
                source_lines = handle.read().splitlines()
        except OSError:
            kept.extend(group)
            continue
        suppressions, _ = parse_suppressions(source_lines, path)
        kept.extend(apply_suppressions(group, suppressions))
    return kept


def lint_project(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    root: Optional[str] = None,
) -> List[Finding]:
    """Run every project rule against the project owning ``paths``.

    ``rule_ids`` restricts to a subset (the CLI's ``--rule``); a target
    tree without a ``src/repro`` layout yields no findings (the file
    pass still runs).  Findings carry root-relative POSIX paths and are
    suppressible exactly like file findings.
    """
    wanted = set(rule_ids) if rule_ids is not None else None
    rules = [
        rule
        for rule in all_project_rules()
        if wanted is None or rule.rule_id in wanted
    ]
    if not rules:
        return []
    resolved = root if root is not None else find_project_root(paths)
    if resolved is None:
        return []
    context = build_project(resolved)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(context))
    return sort_findings(_apply_project_suppressions(resolved, findings))
