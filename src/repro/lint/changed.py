"""``--changed-only``: scope the file pass to what git says moved.

The pre-commit hook runs the analyzer on every commit; linting the
whole tree there is wasted latency when the determinism rules are
per-file.  This module asks git for the working-tree delta -- files
changed against ``HEAD`` plus untracked files -- and the CLI restricts
the *file* rules to that set.  The *project* rules always run in full:
their whole point is cross-module contracts, and a digest-coverage
hole introduced by editing ``spec.py`` must surface even when the
matrix files did not change.

Scoping is a filter, never a discovery mechanism: the changed set is
intersected with the files the path arguments already selected, so
``--changed-only src`` cannot drag in an edited test file.  Git being
unavailable or the tree not being a repository is a usage error
(:class:`ChangedOnlyError` -> exit 2), not a silent full run.
"""

from __future__ import annotations

import os
import subprocess
from typing import List, Sequence, Set


class ChangedOnlyError(Exception):
    """--changed-only could not determine the changed set."""


def _git_lines(arguments: Sequence[str], cwd: str) -> List[str]:
    try:
        completed = subprocess.run(
            ["git", *arguments],
            cwd=cwd,
            capture_output=True,
            text=True,
            check=False,
        )
    except OSError as exc:
        raise ChangedOnlyError(f"--changed-only needs git: {exc}") from exc
    if completed.returncode != 0:
        detail = completed.stderr.strip() or f"git exited {completed.returncode}"
        raise ChangedOnlyError(f"--changed-only: {detail}")
    return [line for line in completed.stdout.splitlines() if line]


def changed_files(cwd: str = ".") -> Set[str]:
    """Absolute paths of files changed vs HEAD, plus untracked files."""
    top = _git_lines(["rev-parse", "--show-toplevel"], cwd)
    if not top:
        raise ChangedOnlyError("--changed-only: not inside a git repository")
    root = top[0]
    names = _git_lines(["diff", "--name-only", "HEAD"], cwd)
    names += _git_lines(
        ["ls-files", "--others", "--exclude-standard"], cwd
    )
    return {os.path.abspath(os.path.join(root, name)) for name in names}


def restrict_to_changed(files: Sequence[str], cwd: str = ".") -> List[str]:
    """The subset of ``files`` git reports as changed (order preserved)."""
    changed = changed_files(cwd)
    return [
        filename
        for filename in files
        if os.path.abspath(filename) in changed
    ]
