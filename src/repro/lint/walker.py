"""File discovery and the analysis pipeline.

One file's analysis is: parse -> run every in-scope rule -> collect
suppressions -> drop suppressed findings -> add suppression-hygiene
findings.  The walker is deliberately deterministic end to end: files
are discovered in sorted order, rules run in id order, and the merged
findings are sorted by ``(path, line, col, rule)`` -- so the analyzer's
own output is stable under ``PYTHONHASHSEED``, which the test suite
asserts by running the CLI twice under different seeds.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import Finding, sort_findings
from repro.lint.registry import FileContext, all_rules
from repro.lint.suppress import apply_suppressions, parse_suppressions


def module_path_of(path: str) -> str:
    """The scope-normalised module path of a file.

    Rule scopes are written against the package tree (``repro/fastpath``
    ...), so strip everything up to and including the last path segment
    *before* the final ``repro`` directory: ``src/repro/core/x.py`` and
    ``/abs/src/repro/core/x.py`` both normalise to ``repro/core/x.py``.
    Files outside a ``repro`` tree keep their given (POSIX) path, which
    scoped rules simply will not match -- fixture tests pass virtual
    ``repro/...`` paths to opt in.
    """
    posix = path.replace(os.sep, "/")
    parts = posix.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return posix.lstrip("./")


def discover_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Missing paths raise ``FileNotFoundError`` (a typo that silently
    lints nothing must not exit 0).  ``__pycache__`` is skipped.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path.replace(os.sep, "/"))
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        full = os.path.join(dirpath, filename)
                        found.append(full.replace(os.sep, "/"))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(set(found))


def lint_source(
    source: str,
    path: str,
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyse one file's text.

    ``path`` doubles as the report path and (normalised) the scope key;
    fixture tests pass virtual paths like ``repro/fastpath/x.py`` to
    place a snippet inside a scoped package.  ``rule_ids`` restricts to
    a subset of rules (the CLI's ``--rule``); suppression hygiene
    always runs.
    """
    wanted = set(rule_ids) if rule_ids is not None else None
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        lineno = exc.lineno or 1
        return [
            Finding(
                path=path,
                line=lineno,
                col=(exc.offset or 0) + 1,
                rule="E999",
                message=f"syntax error: {exc.msg}",
            )
        ]
    source_lines = tuple(source.splitlines())
    ctx = FileContext(
        path=path, module_path=module_path_of(path), source_lines=source_lines
    )
    findings: List[Finding] = []
    for rule in all_rules():
        if wanted is not None and rule.rule_id not in wanted:
            continue
        if not rule.applies_to(ctx.module_path):
            continue
        findings.extend(rule.check(tree, ctx))
    suppressions, hygiene = parse_suppressions(source_lines, path)
    findings = apply_suppressions(findings, suppressions)
    findings.extend(hygiene)
    return sort_findings(findings)


def lint_files(
    files: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyse an explicit, already-discovered file list."""
    findings: List[Finding] = []
    for filename in sorted(set(files)):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings.extend(lint_source(source, filename, rule_ids))
    return sort_findings(findings)


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Analyse every ``.py`` file under ``paths`` (sorted, deduplicated)."""
    return lint_files(discover_files(paths), rule_ids)
