"""The pluggable rule registry.

A rule is a :class:`Rule` descriptor plus a ``check`` callable.  Rule
modules under :mod:`repro.lint.rules` register themselves at import
time via :func:`register_rule`; anything else (a project-local plugin,
a test fixture rule) can do the same.  The registry is keyed by rule id
but only ever *iterated* through :func:`all_rules`, which sorts by id --
registration order must not leak into report order.

Scoping: a rule may declare ``scope`` path prefixes (POSIX, relative to
the package root, e.g. ``"repro/fastpath"``) and ``excludes``.  The
walker normalises every linted file to such a module path (the part of
the path from the last ``repro/`` segment onward) and asks
:meth:`Rule.applies_to` before running the rule, so determinism rules
that only bind to the execution substrate never fire on, say, the viz
layer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.lint.findings import Finding

if TYPE_CHECKING:
    from repro.lint.project import ProjectContext


@dataclass(frozen=True)
class FileContext:
    """Everything a rule check sees about the file under analysis.

    ``path`` is the report path (as given on the command line);
    ``module_path`` is the scope-normalised path used for rule
    applicability (``repro/fastpath/engine.py``).  ``source_lines`` is
    the raw text split into lines, for rules that need lexical context.
    """

    path: str
    module_path: str
    source_lines: Tuple[str, ...]


CheckFn = Callable[[ast.Module, FileContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """A registered analyzer rule.

    ``scope``/``excludes`` are module-path prefixes (see module
    docstring); an empty scope means the rule applies everywhere.  A
    prefix matches a whole path segment: ``repro/core`` matches
    ``repro/core/amnesiac.py`` but not ``repro/core_utils.py``.
    """

    rule_id: str
    name: str
    summary: str
    check: CheckFn
    scope: Tuple[str, ...] = ()
    excludes: Tuple[str, ...] = ()

    def applies_to(self, module_path: str) -> bool:
        if any(_prefix_matches(prefix, module_path) for prefix in self.excludes):
            return False
        if not self.scope:
            return True
        return any(_prefix_matches(prefix, module_path) for prefix in self.scope)


def _prefix_matches(prefix: str, module_path: str) -> bool:
    return module_path == prefix or module_path.startswith(prefix.rstrip("/") + "/")


ProjectCheckFn = Callable[["ProjectContext"], Iterable[Finding]]


@dataclass(frozen=True)
class ProjectRule:
    """A rule that runs once per project, against a :class:`ProjectContext`.

    Unlike :class:`Rule`, which sees one file's AST at a time, a
    project rule sees the whole-tree context (per-module ASTs, the
    import graph, the extracted registries) and emits findings that may
    attach to any file in the project -- ``src/``, ``tests/`` or
    ``benchmarks/``.  Project rules have no path scope: the context
    itself is the scope.
    """

    rule_id: str
    name: str
    summary: str
    check: ProjectCheckFn


_RULES: Dict[str, Rule] = {}
# repro-lint note: module-level registry by design -- populated once at
# import time by repro.lint.rules; repro/lint is outside REP007 scope.

_PROJECT_RULES: Dict[str, ProjectRule] = {}
# repro-lint note: same write-once registry pattern as _RULES.

# The suppression-hygiene pseudo-rule: emitted by the walker itself when
# a disable comment carries no justification.  It has an id so reports
# and docs can name it, but no check function and no ability to be
# suppressed (a bad suppression must not silence itself).
SUPPRESSION_RULE_ID = "REP000"


def register_rule(rule: Rule) -> Rule:
    """Add ``rule`` to the registry (duplicate ids are a programming error)."""
    if rule.rule_id in _RULES or rule.rule_id in _PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    if rule.rule_id == SUPPRESSION_RULE_ID:
        raise ValueError(f"{SUPPRESSION_RULE_ID} is reserved for suppression hygiene")
    _RULES[rule.rule_id] = rule
    return rule


def register_project_rule(rule: ProjectRule) -> ProjectRule:
    """Add a project-level rule (ids share one namespace with file rules)."""
    if rule.rule_id in _RULES or rule.rule_id in _PROJECT_RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    if rule.rule_id == SUPPRESSION_RULE_ID:
        raise ValueError(f"{SUPPRESSION_RULE_ID} is reserved for suppression hygiene")
    _PROJECT_RULES[rule.rule_id] = rule
    return rule


def all_project_rules() -> List[ProjectRule]:
    """Every registered project rule, sorted by id (the only order)."""
    _ensure_builtin_rules()
    return [_PROJECT_RULES[rule_id] for rule_id in sorted(_PROJECT_RULES)]


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id (the only iteration order)."""
    _ensure_builtin_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Optional[Rule]:
    _ensure_builtin_rules()
    return _RULES.get(rule_id)


def known_rule_ids() -> List[str]:
    """All ids a suppression or ``--rule`` filter may name (incl. REP000)."""
    _ensure_builtin_rules()
    return sorted([SUPPRESSION_RULE_ID, *_RULES, *_PROJECT_RULES])


def _ensure_builtin_rules() -> None:
    # Importing the rules package registers the built-in rule set; the
    # lazy import keeps registry importable from rule modules themselves.
    import repro.lint.rules  # noqa: F401


@dataclass
class RuleDoc:
    """Presentation metadata for ``--list-rules`` and the docs table.

    ``kind`` is ``"file"`` for per-file AST rules and ``"project"`` for
    rules that run once per project against the whole-tree context.
    """

    rule_id: str
    name: str
    summary: str
    scope: Tuple[str, ...] = field(default_factory=tuple)
    kind: str = "file"


def rule_docs() -> List[RuleDoc]:
    docs = [
        RuleDoc(
            SUPPRESSION_RULE_ID,
            "suppression-hygiene",
            "a `# repro-lint: disable=...` comment has no `-- justification`",
        )
    ]
    docs.extend(
        RuleDoc(rule.rule_id, rule.name, rule.summary, rule.scope)
        for rule in all_rules()
    )
    docs.extend(
        RuleDoc(rule.rule_id, rule.name, rule.summary, kind="project")
        for rule in all_project_rules()
    )
    return sorted(docs, key=lambda d: d.rule_id)
