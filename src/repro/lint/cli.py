"""The ``python -m repro.lint`` command line.

Two passes: the *file* pass runs the per-file AST rules over every
discovered ``.py`` file, and the *project* pass (``--project``, on by
default when any target is a directory) builds one
:class:`~repro.lint.project.ProjectContext` and runs the cross-module
contract rules against it.  ``--changed-only`` scopes the file pass to
git's working-tree delta while the project pass stays whole-tree.

Exit codes follow the convention of the other gates in this repo:

* ``0`` -- clean (no unsuppressed, unbaselined findings)
* ``1`` -- findings reported
* ``2`` -- usage or I/O error (unknown rule id, unreadable baseline,
  ``--changed-only`` outside a git checkout...)
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.changed import ChangedOnlyError, restrict_to_changed
from repro.lint.findings import sort_findings
from repro.lint.project import lint_project
from repro.lint.registry import known_rule_ids, rule_docs
from repro.lint.report import (
    render_github,
    render_json,
    render_sarif,
    render_text,
)
from repro.lint.walker import discover_files, lint_files

_RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
    "github": render_github,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and cross-process-safety analyzer for "
            "the flooding reproduction (file rules REP001-REP103, project "
            "rules REP201-REP302; see docs/determinism.md and "
            "docs/static-analysis.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="REPxxx",
        help="restrict to one rule id (repeatable)",
    )
    parser.add_argument(
        "--project",
        dest="project",
        action="store_true",
        default=None,
        help=(
            "run the cross-module project rules too "
            "(default: on when any target is a directory)"
        ),
    )
    parser.add_argument(
        "--no-project",
        dest="project",
        action="store_false",
        help="skip the project rules",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help=(
            "file pass: only files git reports changed vs HEAD (plus "
            "untracked); the project pass still sees the whole tree"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the (post-suppression) findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for doc in rule_docs():
        scope = f" [scope: {', '.join(doc.scope)}]" if doc.scope else ""
        kind = " [project]" if doc.kind == "project" else ""
        lines.append(f"{doc.rule_id}  {doc.name}: {doc.summary}{kind}{scope}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    rules: Optional[List[str]] = options.rules
    if rules is not None:
        known = known_rule_ids()
        unknown = sorted(set(rules) - set(known))
        if unknown:
            names = ", ".join(repr(rule_id) for rule_id in unknown)
            sys.stderr.write(
                f"repro.lint: unknown rule {names}; "
                f"known rules: {', '.join(known)}\n"
            )
            return 2
    project_enabled = options.project
    if project_enabled is None:
        project_enabled = any(os.path.isdir(path) for path in options.paths)
    try:
        files = discover_files(options.paths)
    except (FileNotFoundError, OSError) as exc:
        sys.stderr.write(f"repro.lint: {exc}\n")
        return 2
    if options.changed_only:
        try:
            files = restrict_to_changed(files)
        except ChangedOnlyError as exc:
            sys.stderr.write(f"repro.lint: {exc}\n")
            return 2
    try:
        findings = lint_files(files, rules)
    except OSError as exc:
        sys.stderr.write(f"repro.lint: {exc}\n")
        return 2
    if project_enabled:
        findings = sort_findings(
            findings + lint_project(options.paths, rules)
        )
    if options.write_baseline:
        write_baseline(options.write_baseline, findings)
        sys.stderr.write(
            f"repro.lint: wrote {len(findings)} findings to "
            f"{options.write_baseline}\n"
        )
        return 0
    if options.baseline:
        try:
            baselined = load_baseline(options.baseline)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"repro.lint: {exc}\n")
            return 2
        findings = apply_baseline(findings, baselined)
    rendered = _RENDERERS[options.format](findings, len(files))
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 1 if findings else 0
