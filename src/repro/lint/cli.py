"""The ``python -m repro.lint`` command line.

Exit codes follow the convention of the other gates in this repo:

* ``0`` -- clean (no unsuppressed, unbaselined findings)
* ``1`` -- findings reported
* ``2`` -- usage or I/O error (bad rule id, unreadable baseline...)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.registry import known_rule_ids, rule_docs
from repro.lint.report import render_json, render_text
from repro.lint.walker import discover_files, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "AST-based determinism and cross-process-safety analyzer for "
            "the flooding reproduction (rules REP001-REP007; see "
            "docs/determinism.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyse (default: src)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="REPxxx",
        help="restrict to one rule id (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="subtract the findings recorded in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the (post-suppression) findings as a new baseline and exit 0",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _list_rules() -> str:
    lines = []
    for doc in rule_docs():
        scope = f" [scope: {', '.join(doc.scope)}]" if doc.scope else ""
        lines.append(f"{doc.rule_id}  {doc.name}: {doc.summary}{scope}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)
    if options.list_rules:
        sys.stdout.write(_list_rules())
        return 0
    rules: Optional[List[str]] = options.rules
    if rules is not None:
        known = known_rule_ids()
        for rule_id in rules:
            if rule_id not in known:
                parser.error(
                    f"unknown rule {rule_id!r}; known rules: {', '.join(known)}"
                )
    try:
        files = discover_files(options.paths)
        findings = lint_paths(options.paths, rules)
    except (FileNotFoundError, OSError) as exc:
        sys.stderr.write(f"repro.lint: {exc}\n")
        return 2
    if options.write_baseline:
        write_baseline(options.write_baseline, findings)
        sys.stderr.write(
            f"repro.lint: wrote {len(findings)} findings to "
            f"{options.write_baseline}\n"
        )
        return 0
    if options.baseline:
        try:
            baselined = load_baseline(options.baseline)
        except (OSError, ValueError) as exc:
            sys.stderr.write(f"repro.lint: {exc}\n")
            return 2
        findings = apply_baseline(findings, baselined)
    rendered = (
        render_json(findings, len(files))
        if options.format == "json"
        else render_text(findings, len(files))
    )
    if options.output:
        with open(options.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 1 if findings else 0
