"""Intra-function dataflow over asyncio futures, for REP101/REP102.

The bug class (shipped in PR 8, fixed by settlement-order discipline in
``service.py``): a coalescing future is created with
``loop.create_future()`` and *registered* into a pending table
(``self._inflight[key] = fut``) so later requests can join it -- and
then an exception path exits without ever settling it.  Every joiner
awaits a future nobody will resolve.  The cure is mechanical: every
``except`` branch overlapping the at-risk window must settle the future
(``set_result``/``set_exception``/``cancel``) or hand it off to
something that owns settlement.

This module is the shared lifecycle analysis.  Per function it finds
each ``var = <expr>.create_future()`` assignment and classifies every
subsequent mention of ``var`` in the same scope (nested ``def``/
``lambda``/``class`` bodies are separate scopes and are skipped):

* **registration** -- ``var`` stored through a subscript or attribute
  target (``table[key] = var``, ``self._slot = var``): the future is
  now visible to other coroutines, so this function is on the hook for
  settling it until it hands that duty away.
* **settlement** -- ``var.set_result(...)`` / ``var.set_exception(...)``
  / ``var.cancel()``.
* **hand-off** -- ``var`` passed as a call argument (at any nesting
  depth: ``waiters.append((n, var))`` counts), returned, or yielded.
  Responsibility transfers to the callee/caller; tracking ends at the
  first hand-off.

The analysis is deliberately lexical (line spans, not a real CFG): the
service code it guards is straight-line with ``try`` blocks, and a
lexical over-approximation keeps the rule implementable, predictable
and fast.  Rules consume :class:`FutureFlow` plus the coverage helpers
below; the flag decisions live in the rule modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

SETTLE_METHODS = ("set_result", "set_exception", "cancel")

_SCOPE_BARRIERS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


@dataclass(frozen=True)
class FutureFlow:
    """The lifecycle of one ``create_future()`` variable in one function.

    Line numbers are 1-based and lexical; ``registrations``/``settles``/
    ``handoffs`` are sorted.  ``end_line()`` is where this function's
    settlement duty lexically ends (the first hand-off, else the end of
    the function).
    """

    name: str
    created_line: int
    created_col: int
    registrations: Tuple[int, ...]
    settles: Tuple[int, ...]
    handoffs: Tuple[int, ...]
    function_end: int

    def first_registration(self) -> Optional[int]:
        return self.registrations[0] if self.registrations else None

    def end_line(self) -> int:
        return self.handoffs[0] if self.handoffs else self.function_end

    def is_dead(self) -> bool:
        """Created but never registered, settled, or handed off."""
        return not (self.registrations or self.settles or self.handoffs)


def walk_scope(func: FunctionNode) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested scopes."""
    stack: List[ast.AST] = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, _SCOPE_BARRIERS):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_functions(tree: ast.Module) -> Iterator[FunctionNode]:
    """Every function/method in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _name_occurs(node: ast.AST, name: str) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == name:
            return True
    return False


def is_settle_call(node: ast.AST, name: str) -> bool:
    """``name.set_result(...)`` / ``name.set_exception(...)`` / ``name.cancel()``."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SETTLE_METHODS
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id == name
    )


def is_handoff(node: ast.AST, name: str) -> bool:
    """``name`` given away: as a call argument (any depth), returned, yielded."""
    if isinstance(node, ast.Call) and not is_settle_call(node, name):
        arguments: List[ast.AST] = list(node.args)
        arguments.extend(keyword.value for keyword in node.keywords)
        return any(_name_occurs(argument, name) for argument in arguments)
    if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
        return node.value is not None and _name_occurs(node.value, name)
    return False


def _is_registration(node: ast.AST, name: str) -> bool:
    if not isinstance(node, ast.Assign):
        return False
    if not _name_occurs(node.value, name):
        return False
    return any(
        isinstance(target, (ast.Subscript, ast.Attribute))
        for target in node.targets
    )


def _is_create_future_assign(node: ast.AST) -> Optional[Tuple[str, ast.Assign]]:
    if (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.targets[0], ast.Name)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Attribute)
        and node.value.func.attr == "create_future"
    ):
        return node.targets[0].id, node
    return None


def _node_end(node: ast.AST) -> int:
    end = getattr(node, "end_lineno", None)
    return end if end is not None else getattr(node, "lineno", 0)


def future_flows(func: FunctionNode) -> List[FutureFlow]:
    """Every ``create_future()`` variable's lifecycle within ``func``."""
    creations: List[Tuple[str, ast.Assign]] = []
    for node in walk_scope(func):
        found = _is_create_future_assign(node)
        if found is not None:
            creations.append(found)
    flows: List[FutureFlow] = []
    function_end = _node_end(func)
    for name, assign in creations:
        registrations: List[int] = []
        settles: List[int] = []
        handoffs: List[int] = []
        for node in walk_scope(func):
            line = getattr(node, "lineno", 0)
            if line <= assign.lineno and node is not assign:
                # Lexical window: only events at/after creation count.
                # (A same-named future from an earlier loop iteration is
                # the same variable; re-creation restarts its window.)
                if line < assign.lineno:
                    continue
            if node is assign:
                continue
            if _is_registration(node, name):
                registrations.append(line)
            elif is_settle_call(node, name):
                settles.append(line)
            elif is_handoff(node, name):
                handoffs.append(line)
        flows.append(
            FutureFlow(
                name=name,
                created_line=assign.lineno,
                created_col=assign.col_offset + 1,
                registrations=tuple(sorted(registrations)),
                settles=tuple(sorted(settles)),
                handoffs=tuple(sorted(handoffs)),
                function_end=function_end,
            )
        )
    return sorted(flows, key=lambda flow: (flow.created_line, flow.name))


# ---------------------------------------------------------------------------
# try/except coverage
# ---------------------------------------------------------------------------


def scope_tries(func: FunctionNode) -> List[ast.Try]:
    """Every ``try`` statement in ``func``'s own scope, by line order."""
    tries = [node for node in walk_scope(func) if isinstance(node, ast.Try)]
    return sorted(tries, key=lambda node: node.lineno)


def try_body_span(node: ast.Try) -> Tuple[int, int]:
    """The 1-based line span of the ``try:`` body (not handlers/finally)."""
    start = node.body[0].lineno if node.body else node.lineno
    end = _node_end(node.body[-1]) if node.body else node.lineno
    return start, end


def block_covers(statements: Sequence[ast.stmt], name: str) -> bool:
    """Does this block settle or hand off ``name`` on some path through it?"""
    for statement in statements:
        for node in ast.walk(statement):
            if isinstance(node, _SCOPE_BARRIERS):
                continue
            if is_settle_call(node, name) or is_handoff(node, name):
                return True
    return False


def uncovered_handlers(node: ast.Try, name: str) -> List[ast.ExceptHandler]:
    """The ``except`` clauses that neither settle nor hand off ``name``.

    A ``finally`` block that covers ``name`` covers every handler (and
    the no-handler propagation path), so it empties the result.
    """
    if block_covers(node.finalbody, name):
        return []
    return [
        handler
        for handler in node.handlers
        if not block_covers(handler.body, name)
    ]
