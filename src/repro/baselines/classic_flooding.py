"""Classic flooding with a seen-flag (the textbook baseline).

The paper contrasts amnesiac flooding with flooding as usually
implemented: "a flag that is set when the message is seen for the first
time to ensure termination" (citing Attiya & Welch).  Each node keeps
one persistent bit; on the first receipt it forwards to every
neighbour except the ones it heard from, and on later receipts it stays
silent.

This is the baseline for the EXT-SCALE comparison: classic flooding
terminates within ``e(source) + 1`` rounds on every connected graph --
exactly ``e(source)`` on bipartite graphs, and ``e(source) + 1`` when
colliding wavefronts make the last-informed nodes forward once more
before noticing everyone has seen the message.  Each node transmits at
most once, so messages are bounded by one per edge direction, while
amnesiac flooding pays up to double that (and up to ``2D + 1`` rounds)
on non-bipartite graphs -- the price of memorylessness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.graphs.graph import Graph, Node
from repro.sync.engine import run_algorithm
from repro.sync.message import FLOOD_PAYLOAD, Message, Send
from repro.sync.node import NodeContext, send_to_all, send_to_complement
from repro.sync.trace import ExecutionTrace


@dataclass
class SeenFlag:
    """The single bit of persistent state classic flooding needs."""

    seen: bool = False


class ClassicFlooding:
    """Flooding with per-node seen-flags.

    Persistent memory: exactly one bit per node (plus nothing else);
    the comparison harness reports this as ``memory_bits = 1``.
    """

    #: Persistent bits of state per node, reported by the comparison
    #: harness (amnesiac flooding reports 0).
    memory_bits = 1

    def __init__(self, payload: Hashable = FLOOD_PAYLOAD) -> None:
        self.payload = payload

    def initial_state(self, node: Node, graph: Graph) -> SeenFlag:
        return SeenFlag()

    def on_start(self, state: SeenFlag, ctx: NodeContext) -> List[Send]:
        state.seen = True
        return send_to_all(ctx, self.payload)

    def on_receive(
        self, state: SeenFlag, inbox: List[Message], ctx: NodeContext
    ) -> List[Send]:
        senders = [m.sender for m in inbox if m.payload == self.payload]
        if not senders or state.seen:
            return []
        state.seen = True
        return send_to_complement(ctx, senders, self.payload)


def classic_flood_trace(
    graph: Graph,
    source: Node,
    max_rounds: Optional[int] = None,
) -> ExecutionTrace:
    """Run classic flooding from ``source`` and return the trace."""
    return run_algorithm(
        graph, ClassicFlooding(), initiators=[source], max_rounds=max_rounds
    )


def classic_termination_round(graph: Graph, source: Node) -> int:
    """Rounds until no message is in flight.

    Equals ``e(source)`` on connected bipartite graphs and at most
    ``e(source) + 1`` in general (see the module docstring).
    """
    return classic_flood_trace(graph, source).termination_round


def classic_message_complexity(graph: Graph, source: Node) -> int:
    """Messages sent by classic flooding (at most ``2m``, typically less).

    Each node transmits at most once, to at most ``deg`` neighbours, so
    the count is bounded by the sum of degrees minus the edges already
    covered -- the harness reports the measured value.
    """
    return classic_flood_trace(graph, source).total_messages()
