"""Randomized rumor spreading (push and push-pull).

The paper's related-work pointers ([3] Doerr-Fouz-Friedrich, [4]
Elsasser-Sauerwald) concern randomized broadcasting, where in each
round informed nodes contact a *single* random neighbour.  These
baselines situate amnesiac flooding on the gossip spectrum: AF contacts
all-but-the-senders deterministically with zero memory; push gossip
contacts one uniformly random neighbour using one persistent
informed-bit (plus randomness).

Memory-avoidance variant: [4] shows excluding the previously chosen
neighbour ("memory one") speeds randomized broadcast; the
``avoid_last`` switch implements exactly that, mirroring the paper's
remark that "avoiding the most recently chosen node(s) has been used
before ... in broadcasting".
"""

from __future__ import annotations

import random  # repro-lint: disable=REP003 -- non-flooding comparator baseline: seeded sequential stream, never feeds the equivalence matrix
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node


@dataclass
class RumorResult:
    """Outcome of a rumor-spreading run.

    ``rounds_to_all`` is the first round after which every node in the
    source's component is informed (``None`` if the horizon was hit);
    ``informed_per_round[i]`` is the number of informed nodes after
    round ``i + 1``; ``total_contacts`` counts point-to-point calls.
    """

    source: Node
    rounds_to_all: Optional[int]
    informed_per_round: List[int] = field(default_factory=list)
    total_contacts: int = 0


def push_rumor(
    graph: Graph,
    source: Node,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    avoid_last: bool = False,
    pull: bool = False,
) -> RumorResult:
    """Synchronous push (optionally push-pull) rumor spreading.

    Parameters
    ----------
    avoid_last:
        Implement the memory-one optimisation of [4]: an informed node
        never re-contacts the neighbour it contacted in the previous
        round (when it has another choice).
    pull:
        Also let uninformed nodes contact one random neighbour and pull
        the rumor if that neighbour is informed.
    """
    if not graph.has_node(source):
        from repro.errors import NodeNotFoundError

        raise NodeNotFoundError(source)
    rng = random.Random(seed)
    component_size = _component_size(graph, source)
    horizon = max_rounds if max_rounds is not None else 20 * max(
        4, graph.num_nodes
    )

    informed: Set[Node] = {source}
    last_contact: Dict[Node, Node] = {}
    informed_per_round: List[int] = []
    total_contacts = 0
    rounds_to_all: Optional[int] = None

    for round_number in range(1, horizon + 1):
        newly: Set[Node] = set()
        # Push phase.
        for node in sorted(informed, key=repr):
            choices = sorted(graph.neighbors(node), key=repr)
            if not choices:
                continue
            if avoid_last and len(choices) > 1 and node in last_contact:
                choices = [c for c in choices if c != last_contact[node]]
            target = rng.choice(choices)
            last_contact[node] = target
            total_contacts += 1
            if target not in informed:
                newly.add(target)
        # Pull phase.
        if pull:
            for node in sorted(set(graph.nodes()) - informed, key=repr):
                choices = sorted(graph.neighbors(node), key=repr)
                if not choices:
                    continue
                target = rng.choice(choices)
                total_contacts += 1
                if target in informed:
                    newly.add(node)
        informed |= newly
        informed_per_round.append(len(informed))
        if len(informed) == component_size:
            rounds_to_all = round_number
            break

    return RumorResult(
        source=source,
        rounds_to_all=rounds_to_all,
        informed_per_round=informed_per_round,
        total_contacts=total_contacts,
    )


def _component_size(graph: Graph, source: Node) -> int:
    from repro.graphs.traversal import bfs_distances

    return len(bfs_distances(graph, source))


def expected_rounds_estimate(
    graph: Graph,
    source: Node,
    trials: int,
    seed: Optional[int] = None,
    avoid_last: bool = False,
    pull: bool = False,
) -> float:
    """Monte-Carlo mean of ``rounds_to_all`` over ``trials`` seeded runs.

    Trials that hit the horizon are scored at the horizon (a
    conservative lower bound on the mean); with the default generous
    horizon this essentially never triggers on connected graphs.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    rng = random.Random(seed)
    total = 0.0
    for _ in range(trials):
        result = push_rumor(
            graph,
            source,
            seed=rng.randrange(2**31),
            avoid_last=avoid_last,
            pull=pull,
        )
        if result.rounds_to_all is None:
            total += len(result.informed_per_round)
        else:
            total += result.rounds_to_all
    return total / trials
