"""Baselines the paper compares or cites against amnesiac flooding.

* :mod:`~repro.baselines.classic_flooding` -- flooding with a seen-flag
  (one persistent bit), the textbook termination mechanism.
* :mod:`~repro.baselines.bfs_broadcast` -- broadcast that additionally
  builds a BFS spanning tree (flooding's classic payoff).
* :mod:`~repro.baselines.rumor` -- randomized push / push-pull rumor
  spreading, including the avoid-last-choice memory-one variant.
* :mod:`~repro.baselines.compare` -- the rounds/messages/memory
  comparison harness used by the scaling benchmarks.
"""

from repro.baselines.bfs_broadcast import BfsBroadcast, BfsBroadcastResult, bfs_broadcast
from repro.baselines.classic_flooding import (
    ClassicFlooding,
    classic_flood_trace,
    classic_message_complexity,
    classic_termination_round,
)
from repro.baselines.compare import (
    AlgorithmMetrics,
    ComparisonRow,
    compare_on,
    comparison_table,
)
from repro.baselines.rumor import RumorResult, expected_rounds_estimate, push_rumor

__all__ = [
    "BfsBroadcast",
    "BfsBroadcastResult",
    "bfs_broadcast",
    "ClassicFlooding",
    "classic_flood_trace",
    "classic_message_complexity",
    "classic_termination_round",
    "AlgorithmMetrics",
    "ComparisonRow",
    "compare_on",
    "comparison_table",
    "RumorResult",
    "expected_rounds_estimate",
    "push_rumor",
]
