"""BFS-layer broadcast with spanning-tree construction.

Flooding's classic payoff (quoting the Aspnes notes the paper cites) is
that it "gives you both a broadcast mechanism and a way to build rooted
spanning trees".  This baseline makes that concrete on the synchronous
engine: the message carries its BFS depth, each node adopts its first
sender as parent, and the parent pointers form a BFS spanning tree of
the source's component.

Amnesiac flooding *cannot* build this tree -- nodes have no memory to
store a parent in -- which is exactly the trade-off the comparison
experiments quantify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances
from repro.sync.engine import SynchronousEngine
from repro.sync.message import Message, Send
from repro.sync.node import NodeContext
from repro.sync.trace import ExecutionTrace


@dataclass
class BfsState:
    """Per-node BFS state: adopted parent and depth (None until reached)."""

    parent: Optional[Node] = None
    depth: Optional[int] = None
    is_root: bool = False


class BfsBroadcast:
    """Broadcast that records parents/depths, building a spanning tree.

    The payload is the sender's depth; a node accepts the first round
    in which the message reaches it, picks the deterministically
    smallest sender of that round as parent, and forwards depth+1.
    """

    #: Persistent state: a parent pointer and an integer depth.  The
    #: harness reports parent pointers as ~log2(n) bits.
    memory_bits = None  # reported as O(log n) by the comparison harness

    def initial_state(self, node: Node, graph: Graph) -> BfsState:
        return BfsState()

    def on_start(self, state: BfsState, ctx: NodeContext) -> List[Send]:
        state.is_root = True
        state.depth = 0
        return [Send(neighbour, 0) for neighbour in ctx.neighbors]

    def on_receive(
        self, state: BfsState, inbox: List[Message], ctx: NodeContext
    ) -> List[Send]:
        if state.depth is not None:
            return []
        depths = [m.payload for m in inbox if isinstance(m.payload, int)]
        if not depths:
            return []
        best = min(depths)
        state.depth = best + 1
        state.parent = min(
            (m.sender for m in inbox if m.payload == best), key=repr
        )
        return [Send(neighbour, state.depth) for neighbour in ctx.neighbors]


@dataclass
class BfsBroadcastResult:
    """Outcome of a BFS broadcast run.

    ``parents`` maps every reached non-root node to its tree parent;
    ``depths`` maps every reached node to its BFS depth; ``trace`` is
    the underlying engine trace.
    """

    source: Node
    parents: Dict[Node, Node]
    depths: Dict[Node, int]
    trace: ExecutionTrace

    def tree_edges(self) -> List[Tuple[Node, Node]]:
        """The spanning-tree edges as (parent, child) pairs."""
        return sorted(
            ((parent, child) for child, parent in self.parents.items()),
            key=repr,
        )

    def verify_is_bfs_tree(self, graph: Graph) -> bool:
        """Check depths equal true BFS distances and parents are one level up."""
        true_distances = bfs_distances(graph, self.source)
        if self.depths != true_distances:
            return False
        for child, parent in self.parents.items():
            if self.depths[child] != self.depths[parent] + 1:
                return False
            if not graph.has_edge(child, parent):
                return False
        return True


def bfs_broadcast(
    graph: Graph, source: Node, max_rounds: Optional[int] = None
) -> BfsBroadcastResult:
    """Run the BFS broadcast and harvest the spanning tree it built."""
    states: Dict[Node, BfsState] = {}

    class _Recording(BfsBroadcast):
        """Same behaviour, but exposes the engine's state objects."""

        def initial_state(self, node: Node, graph_: Graph) -> BfsState:
            state = super().initial_state(node, graph_)
            states[node] = state
            return state

    engine = SynchronousEngine(graph, _Recording())
    trace = engine.run([source], max_rounds=max_rounds)
    if not trace.terminated:
        raise SimulationError("BFS broadcast failed to terminate within budget")
    parents = {
        node: state.parent
        for node, state in states.items()
        if state.parent is not None
    }
    depths = {
        node: state.depth for node, state in states.items() if state.depth is not None
    }
    return BfsBroadcastResult(
        source=source, parents=parents, depths=depths, trace=trace
    )
