"""Head-to-head comparison harness: amnesiac vs classic vs BFS broadcast.

Quantifies the trade-off the paper's introduction frames: amnesiac
flooding needs **zero persistent bits** per node but pays extra rounds
and messages on non-bipartite graphs, where the classic seen-flag
flooding stops within ``e(source) + 1`` rounds with one transmission
per node.  The EXT-SCALE benchmark sweeps this comparison over growing
topologies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_bipartite
from repro.graphs.traversal import eccentricity
from repro.core.amnesiac import simulate
from repro.baselines.bfs_broadcast import bfs_broadcast
from repro.baselines.classic_flooding import classic_flood_trace


@dataclass(frozen=True)
class AlgorithmMetrics:
    """Round/message/memory cost of one broadcast run.

    ``memory_bits`` is per-node persistent state: 0 for amnesiac
    flooding, 1 for the seen-flag baseline, and ceil(log2 n) + parent
    pointer (reported as ``2 * ceil(log2 n)``) for BFS broadcast.
    """

    algorithm: str
    rounds: int
    messages: int
    memory_bits: int
    reached_all: bool


@dataclass(frozen=True)
class ComparisonRow:
    """All algorithms on one (graph, source) instance."""

    graph_label: str
    nodes: int
    edges: int
    bipartite: bool
    source_eccentricity: int
    amnesiac: AlgorithmMetrics
    classic: AlgorithmMetrics
    bfs: AlgorithmMetrics

    def round_overhead(self) -> float:
        """Amnesiac rounds divided by classic rounds (>= 1)."""
        if self.classic.rounds == 0:
            return 1.0
        return self.amnesiac.rounds / self.classic.rounds

    def message_overhead(self) -> float:
        """Amnesiac messages divided by classic messages (>= 1)."""
        if self.classic.messages == 0:
            return 1.0
        return self.amnesiac.messages / self.classic.messages


def compare_on(graph: Graph, source: Node, label: str = "") -> ComparisonRow:
    """Run all three broadcast algorithms from ``source`` and tabulate.

    ``reached_all`` is measured against the source's connected
    component (broadcast cannot cross components).
    """
    from repro.graphs.traversal import bfs_distances

    component = set(bfs_distances(graph, source))
    log_n = max(1, math.ceil(math.log2(max(graph.num_nodes, 2))))

    amnesiac_run = simulate(graph, [source])
    amnesiac = AlgorithmMetrics(
        algorithm="amnesiac",
        rounds=amnesiac_run.termination_round,
        messages=amnesiac_run.total_messages,
        memory_bits=0,
        reached_all=amnesiac_run.nodes_reached() >= component,
    )

    classic_trace = classic_flood_trace(graph, source)
    classic = AlgorithmMetrics(
        algorithm="classic",
        rounds=classic_trace.termination_round,
        messages=classic_trace.total_messages(),
        memory_bits=1,
        reached_all=classic_trace.nodes_reached() >= component,
    )

    bfs_result = bfs_broadcast(graph, source)
    bfs = AlgorithmMetrics(
        algorithm="bfs-broadcast",
        rounds=bfs_result.trace.termination_round,
        messages=bfs_result.trace.total_messages(),
        memory_bits=2 * log_n,
        reached_all=set(bfs_result.depths) >= component,
    )

    return ComparisonRow(
        graph_label=label or graph.describe(),
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        bipartite=is_bipartite(graph),
        source_eccentricity=eccentricity(graph, source),
        amnesiac=amnesiac,
        classic=classic,
        bfs=bfs,
    )


def comparison_table(rows: List[ComparisonRow]) -> str:
    """Render comparison rows as a fixed-width text table."""
    header = (
        f"{'graph':<28} {'n':>5} {'m':>6} {'bip':>4} "
        f"{'AF rnd':>7} {'CL rnd':>7} {'AF msg':>8} {'CL msg':>8} "
        f"{'rnd x':>6} {'msg x':>6}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.graph_label:<28.28} {row.nodes:>5} {row.edges:>6} "
            f"{'yes' if row.bipartite else 'no':>4} "
            f"{row.amnesiac.rounds:>7} {row.classic.rounds:>7} "
            f"{row.amnesiac.messages:>8} {row.classic.messages:>8} "
            f"{row.round_overhead():>6.2f} {row.message_overhead():>6.2f}"
        )
    return "\n".join(lines)
