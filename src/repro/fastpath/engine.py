"""Backend dispatch, ``simulate_indexed``, batch ``sweep`` and arc-mask orbits.

This module is the public face of the fast path.  It validates inputs
with the same errors as the reference simulators, picks a backend, and
wraps the raw backend output in :class:`IndexedRun`, whose fields are
bit-for-bit identical to the statistics of
:func:`repro.core.amnesiac.simulate` (the equivalence-matrix tests
assert this on every engine pair).

Backend selection
-----------------
* ``"pure"`` -- per-node integer bitmasks; always available; cost per
  round is O(messages).  Best for small graphs and sparse frontiers.
* ``"numpy"`` -- vectorised boolean arc arrays; available when numpy
  imports; cost per round is O(arcs) regardless of frontier size.  Best
  for large dense floods.
* ``"oracle"`` -- no frontier at all: one BFS over the implicit double
  cover predicts every statistic the frontier engines report
  (termination round, message totals, per-round counts, sender sets,
  receive rounds) in O(n + m) total, independent of how many rounds
  the flood runs.  Always available; the fast lane for sweep
  statistics.

``backend=None`` auto-selects between the frontier engines: numpy when
it is importable *and* the graph has at least
:data:`NUMPY_ARC_THRESHOLD` directed arcs *and* mean degree at least
:data:`NUMPY_MIN_MEAN_DEGREE` (sparse graphs run long floods, which
punish the O(arcs)-per-round engine), else pure.  The oracle is
never auto-selected -- it is a *prediction* of the process rather than
an execution of it, so callers opt in explicitly (and the equivalence
matrix holds it bit-for-bit equal to the executions).  Batches that
*do* resolve to the oracle (explicitly or through the rounds probe)
additionally ride the word-packed bitset sweep
(:mod:`repro.fastpath.bitset_oracle`) when they are deterministic and
at least :data:`BITSET_MIN_BATCH` runs -- an execution strategy, not a
backend name: results still report ``backend="oracle"`` and stay
bit-identical to the per-source oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.api.spec import BatchKey, FloodSpec
from repro.errors import ConfigurationError, NonTerminationError
from repro.fastpath import bitset_oracle, numpy_backend, oracle_backend, pure_backend
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.variants import VariantSpec, run_variant, variant_backend
from repro.graphs.graph import Graph, Node
from repro.sync.engine import default_round_budget

PURE = "pure"
NUMPY = "numpy"
ORACLE = "oracle"

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9

    def _popcount(value: int) -> int:
        return bin(value).count("1")

NUMPY_ARC_THRESHOLD = 4096
"""Auto-selection considers numpy from this many directed arcs."""

NUMPY_MIN_MEAN_DEGREE = 4
"""Auto-selection also requires this mean degree before picking numpy.

Arc count alone is the wrong crossover signal: the numpy engine pays
O(arcs) *per round*, so on sparse long-flood families the rounds
multiply a small per-round win into a large total loss.  The committed
trajectory rows (``BENCH_fastpath.json``) make this concrete -- on the
degree-2 cycle ``C4095`` (8190 arcs, past the arc threshold) the numpy
engine runs the 4096-round flood ~20x slower than pure, while on
mean-degree >= 8 graphs of the same arc count it wins.  The
``bench_allpairs.py`` crossover rows record the measurement per mean
degree; auto-selection therefore takes numpy only when the graph is
both large (arc threshold) *and* dense enough
(``num_arcs >= NUMPY_MIN_MEAN_DEGREE * n``, i.e. mean degree >= 4)
that floods stay short relative to the arc work."""

BITSET_MIN_BATCH = 16
"""Batch size at which oracle batches switch to the bitset sweep.

Below this the word-packed pass cannot amortise its numpy setup over
enough runs to beat the per-source Python BFS; at 16+ runs a single
word sweep replaces 16+ full passes.  Chunked tiers shard at
:data:`repro.parallel.pool.MAX_CHUNK` = 64 = one full word, so pool
chunks of eligible batches arrive word-aligned."""


def available_backends() -> Tuple[str, ...]:
    """The backends runnable in this process (pure is always first).

    Pure and the double-cover oracle are dependency-free and always
    present; numpy appears when it is importable.
    """
    if numpy_backend.HAS_NUMPY:
        return (PURE, NUMPY, ORACLE)
    return (PURE, ORACLE)


def validate_backend_name(backend: Optional[str]) -> None:
    """Name-level backend validation, no index required.

    The part of :func:`select_backend` that depends only on the name
    and the process (numpy importability), split out so request
    validation (:class:`~repro.api.spec.FloodSpec`) can run it without
    touching -- or building -- the graph's CSR index.
    """
    if backend in (None, PURE, ORACLE):
        return
    if backend == NUMPY:
        if not numpy_backend.HAS_NUMPY:
            raise ConfigurationError(
                "numpy backend requested but numpy is not importable"
            )
        return
    raise ConfigurationError(
        f"unknown fastpath backend {backend!r}; expected one of "
        f"{(PURE, NUMPY, ORACLE)}"
    )


def select_backend(index: IndexedGraph, backend: Optional[str] = None) -> str:
    """Resolve a backend name, auto-selecting when ``backend`` is None.

    Auto-selection only ever picks a frontier engine (pure or numpy);
    the oracle must be requested by name.
    """
    validate_backend_name(backend)
    if backend is None:
        if (
            numpy_backend.HAS_NUMPY
            and index.num_arcs >= NUMPY_ARC_THRESHOLD
            and index.num_arcs >= NUMPY_MIN_MEAN_DEGREE * index.n
        ):
            return NUMPY
        return PURE
    return backend


def _resolve_budget(graph: Graph, max_rounds: Optional[int]) -> int:
    if max_rounds is None:
        return default_round_budget(graph)
    if max_rounds < 1:
        raise ConfigurationError("max_rounds must be >= 1")
    return max_rounds


@dataclass
class IndexedRun:
    """Result of one fast-path flood, in id space with label accessors.

    ``termination_round``, ``total_messages`` and ``round_edge_counts``
    carry exactly the semantics of
    :class:`repro.core.amnesiac.FloodingRun`; ``sender_sets()`` and
    ``receive_rounds()`` convert the id-space payloads back to node
    labels (and are only available when the run collected them --
    sweeps skip collection for speed).
    """

    index: IndexedGraph
    sources: Tuple[Node, ...]
    backend: str
    terminated: bool
    termination_round: int
    total_messages: int
    round_edge_counts: List[int]
    sender_ids: Optional[List[List[int]]] = None
    receive_rounds_by_id: Optional[List[List[int]]] = None
    variant: Optional[VariantSpec] = None
    reached_count: Optional[int] = None

    @property
    def graph(self) -> Graph:
        return self.index.graph

    def coverage(self, component_size: int) -> float:
        """Fraction of a component of ``component_size`` nodes reached.

        Available on variant runs (their steppers count reached nodes
        for free) and on any run collected with
        ``collect_receives=True``.
        """
        if component_size <= 0:
            return 1.0
        reached = self.reached_count
        if reached is None:
            if self.receive_rounds_by_id is None:
                raise ConfigurationError(
                    "reached nodes were not collected for this run "
                    "(pass collect_receives=True or run a variant)"
                )
            source_ids = {self.index.ids[label] for label in self.sources}
            reached = sum(
                1
                for node_id, rounds in enumerate(self.receive_rounds_by_id)
                if rounds or node_id in source_ids
            )
        return reached / component_size

    def sender_sets(self) -> List[FrozenSet[Node]]:
        """Per round, the frozenset of sending node labels."""
        if self.sender_ids is None:
            raise ConfigurationError(
                "sender sets were not collected for this run "
                "(pass collect_senders=True)"
            )
        labels = self.index.labels
        return [
            frozenset(labels[sender] for sender in senders)
            for senders in self.sender_ids
        ]

    def receive_rounds(self) -> Dict[Node, Tuple[int, ...]]:
        """Per node label, the ascending rounds it received the message."""
        if self.receive_rounds_by_id is None:
            raise ConfigurationError(
                "receive rounds were not collected for this run "
                "(pass collect_receives=True)"
            )
        labels = self.index.labels
        return {
            labels[node_id]: tuple(rounds)
            for node_id, rounds in enumerate(self.receive_rounds_by_id)
        }

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "cut off"
        return (
            f"IndexedRun(rounds={self.termination_round}, "
            f"messages={self.total_messages}, backend={self.backend}, {status})"
        )


def _dispatch(
    index: IndexedGraph,
    source_ids: Sequence[int],
    key: BatchKey,
    run_key: int = 0,
) -> pure_backend.RawRun:
    """Run one flood described by a resolved :class:`BatchKey`.

    The single execution funnel: the serial entry points, the worker
    pool's chunk bodies and the service's serial executor all reach the
    backends through this function, with the same key object they
    batched on -- so "batchable together" and "runs identically" are
    one definition.
    """
    if key.variant is not None:
        return run_variant(
            index,
            source_ids,
            key.budget,
            key.variant,
            run_key,
            collect_senders=key.collect_senders,
            collect_receives=key.collect_receives,
        )
    if key.backend == NUMPY:
        runner = numpy_backend.run
    elif key.backend == ORACLE:
        runner = oracle_backend.run
    else:
        runner = pure_backend.run
    return runner(
        index,
        source_ids,
        key.budget,
        collect_senders=key.collect_senders,
        collect_receives=key.collect_receives,
    )


def dispatch_batch(
    index: IndexedGraph,
    id_lists: Sequence[Sequence[int]],
    key: BatchKey,
    run_keys: Optional[Sequence[int]] = None,
) -> List[pure_backend.RawRun]:
    """Run one resolved batch of source-id lists; one RawRun per list.

    The batch-granular execution funnel layered over :func:`_dispatch`:
    the serial spec sweep, the worker pool's chunk bodies and the
    service's serial executor all run their batches through this
    function.  Deterministic oracle batches of at least
    :data:`BITSET_MIN_BATCH` runs take the word-packed bitset sweep
    (:mod:`repro.fastpath.bitset_oracle`) when numpy is importable --
    bit-identical to the per-run loop, 64 floods per cover pass;
    everything else (variants, frontier backends, small batches, no
    numpy) falls through to the per-run ``_dispatch`` loop.  Variants
    never take the bitset lane: their steppers execute a stochastic
    process per ``run_keys`` stream, not a cover prediction.
    """
    if (
        key.variant is None
        and key.backend == ORACLE
        and bitset_oracle.HAS_NUMPY
        and len(id_lists) >= BITSET_MIN_BATCH
    ):
        return bitset_oracle.run_batch(
            index,
            id_lists,
            key.budget,
            collect_senders=key.collect_senders,
            collect_receives=key.collect_receives,
        )
    return [
        _dispatch(
            index,
            ids,
            key,
            run_keys[position] if run_keys is not None else 0,
        )
        for position, ids in enumerate(id_lists)
    ]


def wrap_raw_run(
    index: IndexedGraph,
    source_ids: Sequence[int],
    backend: str,
    raw: pure_backend.RawRun,
    variant: Optional[VariantSpec] = None,
) -> IndexedRun:
    """Build an :class:`IndexedRun` from a backend's raw statistics tuple.

    The single place the ``RawRun`` shape is interpreted: the serial
    entry points below and the worker pool's result rehydration
    (:mod:`repro.parallel.pool`) all construct results here, so serial
    and sharded runs cannot drift apart field by field.  Variant
    steppers append a reached-node count as a sixth element
    (:data:`~repro.fastpath.variants.VariantRawRun`).
    """
    terminated, round_counts, total, sender_ids, receives = raw[:5]
    reached = raw[5] if len(raw) > 5 else None
    return IndexedRun(
        index=index,
        sources=tuple(index.labels[source] for source in source_ids),
        backend=backend,
        terminated=terminated,
        termination_round=len(round_counts),
        total_messages=total,
        round_edge_counts=round_counts,
        sender_ids=sender_ids,
        receive_rounds_by_id=receives,
        variant=variant,
        reached_count=reached,
    )


def raw_run_of(run: IndexedRun) -> pure_backend.RawRun:
    """Project an :class:`IndexedRun` back to its backend raw tuple.

    The inverse of :func:`wrap_raw_run`, and the only other place the
    ``RawRun`` shape is spelled out: the result cache
    (:mod:`repro.cache`) persists this projection -- everything the
    wrap funnel interprets, nothing process-local (no index, no label
    tuples) -- so a cached entry rehydrates through the same funnel as
    a fresh backend result and the two cannot drift apart field by
    field.  Variant runs round-trip their reached-node count as the
    sixth element, exactly as their steppers emit it.
    """
    raw = (
        run.terminated,
        run.round_edge_counts,
        run.total_messages,
        run.sender_ids,
        run.receive_rounds_by_id,
    )
    if run.reached_count is not None:
        return raw + (run.reached_count,)  # type: ignore[return-value]
    return raw


def _require_fastpath_spec(spec: FloodSpec) -> None:
    if spec.scenario is not None:
        raise ConfigurationError(
            f"scenario {spec.scenario!r} runs on the reference engines; "
            f"use FloodSession.run (the fast path has no stepper for it)"
        )


def run_spec(spec: FloodSpec, index: Optional[IndexedGraph] = None) -> IndexedRun:
    """One flood from a validated :class:`FloodSpec`, serially.

    The spec-native core behind :func:`simulate_indexed` (which is now
    a shim constructing a spec) and ``FloodSession.run``.  Backend
    resolution for a single run never consults the rounds probe --
    probing costs cover-BFS passes that only amortise across a batch --
    so ``backend=None`` auto-selects a frontier engine exactly like the
    legacy single-run path.  Pass ``index`` to reuse a prebuilt
    :class:`IndexedGraph`.
    """
    _require_fastpath_spec(spec)
    if index is None:
        index = spec.index()
    source_ids = index.resolve_sources(spec.sources)
    if spec.variant is not None:
        chosen = variant_backend(index, spec.backend, spec.variant)
    else:
        chosen = select_backend(index, spec.backend)
    raw = _dispatch(index, source_ids, spec.batch_key(chosen), spec.run_key())
    return wrap_raw_run(index, source_ids, chosen, raw, spec.variant)


def simulate_indexed(
    graph: Graph,
    sources: Iterable[Node],
    max_rounds: Optional[int] = None,
    raise_on_budget: bool = False,
    backend: Optional[str] = None,
    collect_senders: bool = True,
    collect_receives: bool = True,
    index: Optional[IndexedGraph] = None,
    variant: Optional[VariantSpec] = None,
) -> IndexedRun:
    """Fast exact amnesiac flooding on the CSR index.

    Mirrors :func:`repro.core.amnesiac.simulate` (which delegates
    here), including validation errors and budget semantics; pass
    ``index`` to reuse a prebuilt :class:`IndexedGraph` across calls.
    A ``variant`` spec runs the stochastic/memory stepper instead of
    the deterministic process (as run 0 of its seed stream -- sweeps
    give later positions to later runs).

    This is a shim over the declarative request path: it constructs a
    :class:`~repro.api.spec.FloodSpec` and delegates to
    :func:`run_spec`, so the kwargs and the spec pipelines cannot
    drift.
    """
    spec = FloodSpec(
        graph=graph,
        sources=tuple(sources),
        max_rounds=max_rounds,
        backend=backend,
        variant=variant,
        collect_senders=collect_senders,
        collect_receives=collect_receives,
    )
    run = run_spec(spec, index=index)
    if not run.terminated and raise_on_budget:
        raise NonTerminationError(spec.max_rounds)
    return run


def routed_sweep_backend(
    index: IndexedGraph,
    backend: Optional[str],
    budget: int,
    probe: bool = True,
) -> str:
    """Backend resolution for batch sweeps: probe-aware by default.

    ``backend=None`` consults the graph's double-cover rounds probe
    (:mod:`repro.fastpath.probe`) exactly like the service router: long
    expected floods (>= ``ORACLE_ROUND_THRESHOLD`` executed rounds,
    budget-clamped) go to the O(n + m) oracle, everything else to the
    frontier auto-selection.  The probe costs a few cover-BFS passes,
    hoisted once per batch.  ``probe=False`` opts out and restores the
    plain frontier auto-selection; explicit backends always win.
    """
    if backend is not None or not probe:
        return select_backend(index, backend)
    from repro.fastpath.probe import probe_termination_rounds, routed_backend

    return routed_backend(index, probe_termination_rounds(index), budget)


def sweep(
    graph: Graph,
    source_sets: Iterable[Iterable[Node]],
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
    collect_senders: bool = False,
    collect_receives: bool = False,
    variant: Optional[VariantSpec] = None,
    probe: bool = True,
) -> List[IndexedRun]:
    """Run many floods over one graph, indexing it exactly once.

    The batch form behind ``all_pairs_termination``, the
    initial-conditions census sweeps and the scaling benchmarks: the
    CSR freeze, backend choice and budget resolution are hoisted out of
    the per-run loop, and per-run collection defaults to the cheap
    statistics (termination round, message totals, per-round counts).

    Results come back in input order, one :class:`IndexedRun` per
    source set, and are plain picklable dataclasses (the shared index
    serialises without its process-local memo caches), so they can
    cross process boundaries -- :func:`repro.parallel.parallel_sweep`
    is the drop-in sharded form of this function for batches large
    enough to spread across cores.

    Pass ``backend="oracle"`` for the statistics fast lane: the
    double-cover oracle answers termination rounds and message counts
    in O(n + m) per source set, independent of flood length, and is
    held bit-for-bit equal to the frontier engines by the equivalence
    matrix.  ``backend=None`` is *probe-aware*: a cheap rounds probe
    (computed once per batch) routes unambiguously round-heavy
    topologies to the oracle automatically, the same rule the service
    router applies -- pass ``probe=False`` to opt out and keep the
    plain frontier auto-selection.

    A ``variant`` spec (:mod:`repro.fastpath.variants`) runs every
    source set through the stochastic/memory stepper instead: run
    ``i`` of the batch draws from the counter-based stream
    ``derive_key(variant.seed, i)``, so results are bit-identical to
    any resharding of the same batch (``parallel_sweep`` relies on
    this) and never route to the oracle.

    >>> from repro.fastpath import sweep
    >>> from repro.graphs import cycle_graph
    >>> runs = sweep(cycle_graph(9), [[0], [3], [0, 4]])
    >>> [run.termination_round for run in runs]
    [9, 9, 7]
    >>> fast = sweep(cycle_graph(9), [[0], [3], [0, 4]], backend="oracle")
    >>> [run.termination_round for run in fast]
    [9, 9, 7]

    This is a shim over the declarative request path: every source set
    becomes a :class:`~repro.api.spec.FloodSpec` (position ``i`` at
    stream ``i`` for variant work) and the batch runs through
    :func:`sweep_specs`.
    """
    specs = [
        FloodSpec(
            graph=graph,
            sources=tuple(sources),
            max_rounds=max_rounds,
            backend=backend,
            probe=probe,
            variant=variant,
            stream=position if variant is not None else 0,
            collect_senders=collect_senders,
            collect_receives=collect_receives,
        )
        for position, sources in enumerate(source_sets)
    ]
    if not specs:
        # Preserve the legacy contract that an empty batch still
        # validates its budget and backend before returning nothing.
        index = IndexedGraph.of(graph)
        _resolve_budget(graph, max_rounds)
        if variant is not None:
            variant_backend(index, backend, variant)
        else:
            select_backend(index, backend)
        return []
    return sweep_specs(specs)


def ensure_homogeneous_specs(specs: Sequence[FloodSpec]) -> FloodSpec:
    """Check a spec batch agrees on everything execution-relevant.

    Specs of one batch may differ only in sources and RNG ``stream``;
    anything that changes how the backend must run them (graph, budget,
    backend request, probe policy, variant, collection flags) must
    match, because the whole batch resolves to a single
    :class:`BatchKey`.  Returns the lead spec.
    """
    head = specs[0]
    _require_fastpath_spec(head)
    for spec in specs[1:]:
        _require_fastpath_spec(spec)
        if (
            spec.graph != head.graph
            or spec.max_rounds != head.max_rounds
            or spec.backend != head.backend
            or spec.probe != head.probe
            or spec.variant != head.variant
            or spec.collect_senders != head.collect_senders
            or spec.collect_receives != head.collect_receives
        ):
            raise ConfigurationError(
                "sweep_specs requires a homogeneous batch (same graph, "
                "max_rounds, backend, probe, variant and collection "
                "flags); FloodSession.sweep groups heterogeneous specs"
            )
    return head


def batch_key_of(specs: Sequence[FloodSpec], index: IndexedGraph) -> BatchKey:
    """Resolve one homogeneous spec batch to its executable BatchKey.

    The shared front half of every batch tier (serial
    :func:`sweep_specs`, the worker pool, the service's batch path):
    checks the specs agree on everything execution-relevant
    (:func:`ensure_homogeneous_specs`), then runs backend resolution
    once -- variant rules, or the probe-aware routing when the lead
    spec says ``backend=None, probe=True``.
    """
    head = ensure_homogeneous_specs(specs)
    if head.variant is not None:
        chosen = variant_backend(index, head.backend, head.variant)
    else:
        chosen = routed_sweep_backend(
            index, head.backend, head.max_rounds, head.probe
        )
    return head.batch_key(chosen)


def sweep_specs(
    specs: Sequence[FloodSpec], index: Optional[IndexedGraph] = None
) -> List[IndexedRun]:
    """Run a homogeneous batch of specs serially, indexing once.

    The spec-native core behind :func:`sweep`: all specs must share
    their graph and execution-relevant fields (they may differ in
    sources and RNG ``stream``), the CSR freeze and backend routing are
    hoisted out of the loop, and each run draws from its *own* spec's
    stream key -- so a batch built by the :func:`sweep` shim reproduces
    the legacy position-keyed randomness exactly.
    """
    specs = list(specs)
    if not specs:
        return []
    if index is None:
        index = specs[0].index()
    key = batch_key_of(specs, index)
    id_lists = [index.resolve_sources(spec.sources) for spec in specs]
    run_keys = (
        [spec.run_key() for spec in specs] if key.variant is not None else None
    )
    raw_runs = dispatch_batch(index, id_lists, key, run_keys)
    return [
        wrap_raw_run(index, source_ids, key.backend, raw, key.variant)
        for source_ids, raw in zip(id_lists, raw_runs)
    ]


# ----------------------------------------------------------------------
# Arc-mask configurations (arbitrary initial conditions)
# ----------------------------------------------------------------------
#
# A configuration -- any set of in-transit directed messages, not just
# the source-style states the paper starts from -- packs into a single
# arbitrary-precision int with one bit per arc slot.  Ints are hashable
# and compare in O(words), so orbit detection over the exponential
# configuration space runs on machine integers instead of frozensets of
# label tuples.


def arc_mask_of(
    index: IndexedGraph, configuration: Iterable[Tuple[Node, Node]]
) -> int:
    """Pack labelled directed messages into an arc bitmask."""
    mask = 0
    for sender, receiver in configuration:
        mask |= 1 << index.arc_slot(sender, receiver)
    return mask


def configuration_of_mask(
    index: IndexedGraph, mask: int
) -> FrozenSet[Tuple[Node, Node]]:
    """Unpack an arc bitmask back into labelled directed messages."""
    arcs = []
    while mask:
        low = mask & -mask
        arcs.append(index.arc_of_slot(low.bit_length() - 1))
        mask ^= low
    return frozenset(arcs)


def step_arc_mask(index: IndexedGraph, mask: int) -> int:
    """One synchronous round of amnesiac flooding on an arc bitmask.

    The integer-space twin of :func:`repro.core.amnesiac.step_frontier`:
    every receiver forwards along the complement of the slots it heard
    along.
    """
    targets = index.targets
    reverse_bit = index.reverse_bit
    heard: Dict[int, int] = {}
    remaining = mask
    while remaining:
        low = remaining & -remaining
        slot = low.bit_length() - 1
        remaining ^= low
        receiver = targets[slot]
        heard[receiver] = heard.get(receiver, 0) | reverse_bit[slot]
    offsets = index.offsets
    full_masks = index.full_masks
    next_mask = 0
    for receiver, heard_mask in heard.items():
        send = full_masks[receiver] & ~heard_mask
        if send:
            next_mask |= send << offsets[receiver]
    return next_mask


def evolve_arc_mask(
    index: IndexedGraph, mask: int
) -> Tuple[bool, int, Optional[int], int]:
    """Decide termination of a configuration by exact orbit detection.

    Returns ``(terminates, steps_to_outcome, cycle_length, peak_size)``
    with the semantics of
    :class:`repro.core.initial_conditions.EvolutionResult`.
    """
    seen: Dict[int, int] = {mask: 0}
    current = mask
    peak = _popcount(mask)
    step = 0
    while current:
        current = step_arc_mask(index, current)
        step += 1
        size = _popcount(current)
        if size > peak:
            peak = size
        first_seen = seen.get(current)
        if first_seen is not None:
            return False, first_seen, step - first_seen, peak
        seen[current] = step
    return True, step, None, peak
