"""Cheap rounds probes for rounds-aware backend routing.

The frontier engines pay per round -- O(messages) or O(arcs) each --
while the oracle backend pays O(n + m) once, independent of flood
length.  Which one is the right default therefore hinges on a single
number the caller usually does not know: *how many rounds will this
flood run?*

The double cover answers that question at BFS cost.  The predicted
termination round of a flood from source ``s`` is the largest finite
BFS level of the implicit double cover rooted at ``(s, 0)`` (see
:mod:`repro.fastpath.oracle_backend`), so a handful of single-source
cover BFS passes from evenly spaced sample nodes -- O(samples * (n +
m)) total, the same order as *one* oracle-backed run -- yields an
honest estimate of the graph's round scale.  Long-flood families (odd
cycles: n rounds) and short dense ones (expanders: a handful of
rounds) separate by orders of magnitude, so a coarse threshold is
enough to route between them.

The probe is deterministic (fixed sample positions, no randomness), so
routing decisions -- and therefore the backend recorded on every
result -- are reproducible for a given graph and budget.  The service
layer (:mod:`repro.service`) computes it once per registered graph and
amortises it across every query on that topology.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.oracle_backend import cover_levels

PROBE_SAMPLES = 4
"""Default number of sampled single-source cover BFS passes."""

ORACLE_ROUND_THRESHOLD = 32
"""Expected rounds at which routing switches to the oracle backend.

Below the threshold a frontier engine finishes in a handful of
per-round passes and wins on constants; above it the per-round cost
compounds while the oracle stays O(n + m) total.  The benchmark rows
(``BENCH_fastpath.json``) put the crossover well under this value on
the measured families -- the threshold is deliberately conservative so
routing only overrides the frontier engines when the flood is
unambiguously round-heavy.
"""


def probe_termination_rounds(
    index: IndexedGraph, samples: int = PROBE_SAMPLES
) -> Tuple[int, ...]:
    """Predicted single-source termination rounds from sampled sources.

    Runs one implicit-cover BFS from each of ``samples`` evenly spaced
    node ids and returns the predicted termination round of a flood
    started at each -- exact per sample, O(samples * (n + m)) total.
    The spread, not any single value, is the signal: ``max`` of the
    tuple estimates the graph's round scale for routing.
    """
    if index.n == 0 or samples < 1:
        return ()
    step = max(1, index.n // samples)
    sample_ids = list(range(0, index.n, step))[:samples]
    rounds = []
    for source in sample_ids:
        dist = cover_levels(index, [source])
        rounds.append(max(dist))
    return tuple(rounds)


def expected_rounds(
    probe_rounds: Sequence[int], budget: Optional[int] = None
) -> int:
    """The routing estimate: worst sampled round count, clamped to budget.

    A budget caps how many rounds a frontier engine can actually
    execute, so a tight budget makes the per-round engines cheap again
    even on long-flood families -- routing must compare against
    ``min(predicted, budget)``, not the raw prediction.
    """
    if not probe_rounds:
        return 0
    worst = max(probe_rounds)
    if budget is not None and budget < worst:
        return budget
    return worst


def routed_backend(
    index: IndexedGraph,
    probe_rounds: Sequence[int],
    budget: Optional[int] = None,
) -> str:
    """Pick a backend from a rounds probe: oracle for long floods.

    Returns ``"oracle"`` when the expected executed rounds reach
    :data:`ORACLE_ROUND_THRESHOLD`, else defers to the frontier
    auto-selection (numpy/pure) of
    :func:`~repro.fastpath.engine.select_backend`.  Unlike plain
    auto-selection this *can* choose the oracle -- the probe supplies
    the round-scale knowledge that bare ``backend=None`` lacks.
    """
    from repro.fastpath.engine import ORACLE, select_backend

    if expected_rounds(probe_rounds, budget) >= ORACLE_ROUND_THRESHOLD:
        return ORACLE
    return select_backend(index, None)
