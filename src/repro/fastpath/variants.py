"""Arc-mask steppers for every non-deterministic flooding variant.

The flooding variants of :mod:`repro.variants` (probabilistic thinning,
Bernoulli message loss, ``k``-memory windows, periodic re-injection,
concurrent multi-message floods, random-delay asynchrony, dynamic
graphs) all started life on set-based reference steppers.  This module
ports them onto the CSR index and the per-node bitmask frontier of
:mod:`repro.fastpath.pure_backend`, so every registered scenario --
Monte-Carlo surveys, injection phase diagrams, metastability sweeps --
runs at fast-path cost, batches through :mod:`repro.parallel`, serves
through :mod:`repro.service` and keys the result cache, all as plain
:class:`VariantSpec` requests.  The set-based engines stay in the tree
as the pinned references the equivalence matrix checks against.

Randomness
----------
Stochastic steppers draw nothing sequentially.  Every keep/drop
decision is a counter-based hash of its coordinates (:mod:`repro.rng`):

    ``survive(arc) = slot_draw(round_key(run_key, round), slot) < p``

with ``run_key = derive_key(spec.seed, run_index)``; the step-granular
``random_delay`` stepper draws per-(run, step, arc) the same way, with
the async step index as the round coordinate.  The consequences are
the contract of this module:

* a run's outcome depends only on ``(spec.seed, run_index)`` -- not on
  execution order, worker count, chunk size, or batch composition;
* the set-based reference implementations in :mod:`repro.variants` and
  :mod:`repro.asynchrony` consume the *same* coordinates through the
  same functions, so the equivalence matrices
  (``tests/variants/test_fastpath_equivalence.py``,
  ``tests/variants/test_scenario_fastpath_equivalence.py``) hold fast
  and reference runs bit-for-bit equal per variant.

Backends
--------
Variant runs execute only on the pure arc-mask stepper.  The numpy
frontier kernel and the double-cover oracle model the *deterministic*
synchronous process: the oracle in particular is a prediction of
amnesiac flooding's unique execution, which a stochastic,
step-granular or re-injected run is not, so variant requests never
route to them -- ``backend="oracle"``/``"numpy"`` with a variant is a
:class:`~repro.errors.ConfigurationError`, and automatic selection
(:func:`variant_backend`) always resolves to ``"pure"``.

Entry points
------------
:class:`VariantSpec` (build with :func:`thinning`,
:func:`bernoulli_loss`, :func:`k_memory`, :func:`periodic_injection`,
:func:`multi_message`, :func:`random_delay`,
:func:`dynamic_schedule`) plugs into ``fastpath.sweep(...,
variant=spec)``, ``parallel_sweep``, ``SweepPool.sweep`` and
``FloodService.query``; :func:`variant_survey` is the Monte-Carlo
aggregation over a trial batch.  :func:`run_variant` is the raw
per-run dispatch the engine and the worker pool call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import _BYTE_BITS, _decode, _decoders
from repro.fastpath.schedule import ArcSchedule
from repro.graphs.graph import Graph, Node
from repro.rng import (
    derive_key,
    mask_hold_split,
    round_key,
    slot_draw,
    survival_threshold,
)

THINNING = "thinning"
LOSS = "loss"
KMEMORY = "kmemory"
PERIODIC = "periodic"
MULTI = "multi_message"
DELAY = "random_delay"
DYNAMIC = "dynamic"

VARIANT_KINDS = (THINNING, LOSS, KMEMORY, PERIODIC, MULTI, DELAY, DYNAMIC)

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9

    def _popcount(value: int) -> int:
        return bin(value).count("1")


VariantRawRun = Tuple[
    bool,  # terminated within budget
    List[int],  # per-round message counts (round 1 first)
    int,  # total messages
    Optional[List[List[int]]],  # per-round sender ids (None when not collected)
    Optional[List[List[int]]],  # per-node-id ascending receive rounds
    int,  # nodes that ever held the message (sources included)
]
"""The :data:`~repro.fastpath.pure_backend.RawRun` tuple plus a trailing
reached-node count (coverage is a headline variant statistic and too
cheap to recompute from full receive collection)."""


@dataclass(frozen=True)
class VariantSpec:
    """One variant of the flooding process, as a picklable value.

    ``kind`` selects the stepper; ``probability`` is the per-message
    *survival* probability of the ``thinning``/``loss`` kinds (the two
    share dynamics -- a dropped forward and a lost message are the same
    event in the synchronous model -- and differ only in how callers
    parameterise them) or the per-message *hold* probability of
    ``random_delay``; ``k`` is the memory window of ``kmemory``;
    ``period``/``injections`` parameterise ``periodic``; ``schedule``
    is the frozen :class:`~repro.fastpath.schedule.ArcSchedule` of
    ``dynamic``; ``seed`` owns the randomness (run ``i`` of a batch
    draws from the stream ``derive_key(seed, i)``; the deterministic
    kinds ignore it).

    Frozen and hashable: specs ride in pool task tuples and service
    micro-batch keys unchanged.  Build through :func:`thinning`,
    :func:`bernoulli_loss`, :func:`k_memory`,
    :func:`periodic_injection`, :func:`multi_message`,
    :func:`random_delay` or :func:`dynamic_schedule`.
    """

    kind: str
    probability: Optional[float] = None
    k: Optional[int] = None
    seed: int = 0
    period: Optional[int] = None
    injections: Optional[int] = None
    schedule: Optional[ArcSchedule] = None

    def __post_init__(self) -> None:
        if self.kind not in VARIANT_KINDS:
            raise ConfigurationError(
                f"unknown variant kind {self.kind!r}; expected one of "
                f"{VARIANT_KINDS}"
            )
        if self.kind == KMEMORY:
            if self.k is None or self.k < 0:
                raise ConfigurationError("kmemory requires k >= 0")
            self._reject_fields("probability", "period", "injections", "schedule")
        elif self.kind in (THINNING, LOSS):
            if self.probability is None or not 0.0 <= self.probability <= 1.0:
                raise ConfigurationError(
                    f"{self.kind} requires a survival probability in [0, 1]"
                )
            self._reject_fields("k", "period", "injections", "schedule")
        elif self.kind == DELAY:
            # Strict upper bound: p = 1 would hold everything forever
            # and the all-held fallback would degenerate into a
            # deterministic single-delivery schedule nobody asked for.
            if self.probability is None or not 0.0 <= self.probability < 1.0:
                raise ConfigurationError(
                    "random_delay requires a hold probability in [0, 1)"
                )
            self._reject_fields("k", "period", "injections", "schedule")
        elif self.kind == PERIODIC:
            if self.period is None or self.period < 1:
                raise ConfigurationError("periodic requires period >= 1")
            if self.injections is None or self.injections < 1:
                raise ConfigurationError("periodic requires injections >= 1")
            self._reject_fields("probability", "k", "schedule")
        elif self.kind == MULTI:
            self._reject_fields(
                "probability", "k", "period", "injections", "schedule"
            )
        else:  # DYNAMIC
            if not isinstance(self.schedule, ArcSchedule):
                raise ConfigurationError(
                    "dynamic requires an ArcSchedule (see "
                    "repro.variants.dynamic.export_arc_schedule)"
                )
            self._reject_fields("probability", "k", "period", "injections")

    def _reject_fields(self, *names: str) -> None:
        for name in names:
            if getattr(self, name) is not None:
                raise ConfigurationError(f"{self.kind} takes no {name}")

    @property
    def stochastic(self) -> bool:
        """Whether runs of this variant consume randomness."""
        return self.kind in (THINNING, LOSS, DELAY)

    def run_key(self, run_index: int) -> int:
        """The RNG stream key owned by run ``run_index`` of this spec."""
        return derive_key(self.seed, run_index)


def thinning(forward_probability: float, seed: int = 0) -> VariantSpec:
    """Probabilistic amnesiac flooding: forward each copy w.p. ``q``."""
    return VariantSpec(THINNING, probability=forward_probability, seed=seed)


def bernoulli_loss(loss_rate: float, seed: int = 0) -> VariantSpec:
    """Amnesiac flooding where each message is lost w.p. ``loss_rate``."""
    if not 0.0 <= loss_rate <= 1.0:
        raise ConfigurationError("loss_rate must be within [0, 1]")
    return VariantSpec(LOSS, probability=1.0 - loss_rate, seed=seed)


def k_memory(k: int) -> VariantSpec:
    """``k``-round memory windows (``k = 1`` is amnesiac flooding)."""
    return VariantSpec(KMEMORY, k=k)


def periodic_injection(period: int, injections: int = 3) -> VariantSpec:
    """The source re-floods every ``period`` rounds, ``injections`` times."""
    return VariantSpec(PERIODIC, period=period, injections=injections)


def multi_message() -> VariantSpec:
    """Every source floods its own distinct payload concurrently."""
    return VariantSpec(MULTI)


def random_delay(delay_probability: float, seed: int = 0) -> VariantSpec:
    """Oblivious asynchrony: hold each message w.p. ``delay_probability``.

    Step-granular: the budget counts asynchronous delivery steps, not
    synchronous rounds (an unset ``FloodSpec.max_rounds`` resolves to
    :func:`~repro.sync.engine.default_step_budget`).
    """
    return VariantSpec(DELAY, probability=delay_probability, seed=seed)


def dynamic_schedule(schedule: ArcSchedule) -> VariantSpec:
    """Amnesiac flooding over a time-varying topology.

    ``schedule`` is the arc-diff form of a dynamic graph; freeze any
    :class:`~repro.variants.dynamic.GraphSchedule` into one with
    :func:`repro.variants.dynamic.export_arc_schedule`.
    """
    return VariantSpec(DYNAMIC, schedule=schedule)


def variant_default_budget(variant: VariantSpec, graph: Graph) -> int:
    """The budget an unset ``max_rounds`` resolves to for a variant.

    The uniform budget rule, per granularity: the step-granular
    ``random_delay`` kind counts sub-round asynchronous steps and gets
    :func:`~repro.sync.engine.default_step_budget` (floored well above
    the round budget -- dense graphs are metastable at step
    granularity); every round-granular kind gets
    :func:`~repro.sync.engine.default_round_budget`.
    """
    from repro.sync.engine import default_round_budget, default_step_budget

    if variant.kind == DELAY:
        return default_step_budget(graph)
    return default_round_budget(graph)


def variant_backend(
    index: IndexedGraph, backend: Optional[str], spec: VariantSpec
) -> str:
    """Resolve the backend for a variant run: the pure stepper, always.

    Mirrors :func:`repro.fastpath.select_backend` for the variant
    lanes.  ``None`` auto-selects ``"pure"``; naming any other backend
    raises -- in particular the oracle, which predicts the
    deterministic process and therefore can never stand in for a
    stochastic (or non-amnesiac) execution.
    """
    return resolve_variant_backend(backend, spec)


def resolve_variant_backend(backend: Optional[str], spec: VariantSpec) -> str:
    """The index-free core of :func:`variant_backend`.

    Variant routing depends only on the names (the stepper is always
    the pure arc-mask loop), so request validation
    (:class:`~repro.api.spec.FloodSpec`) runs this without touching the
    CSR index.
    """
    if backend is None or backend == "pure":
        return "pure"
    if backend == "oracle":
        raise ConfigurationError(
            f"the double-cover oracle predicts the deterministic process; "
            f"{spec.kind!r} variant runs never route to it "
            f"(backend must be 'pure' or None)"
        )
    if backend == "numpy":
        raise ConfigurationError(
            f"the numpy kernel runs only the deterministic process; "
            f"{spec.kind!r} variant runs use backend='pure'"
        )
    raise ConfigurationError(
        f"unknown fastpath backend {backend!r} for variant {spec.kind!r}; "
        f"expected 'pure' or None"
    )


def run_variant(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    spec: VariantSpec,
    run_key: int,
    collect_senders: bool = False,
    collect_receives: bool = False,
) -> VariantRawRun:
    """One variant flood on the arc-mask stepper; raw statistics tuple.

    ``run_key`` is the already-derived RNG stream key
    (:meth:`VariantSpec.run_key`); it is threaded explicitly so sharded
    callers can key runs by their *global* batch position.  Ignored by
    the deterministic kinds (``kmemory``, ``periodic``,
    ``multi_message``, ``dynamic``).
    """
    if spec.kind == KMEMORY:
        return _run_kmemory(
            index, source_ids, budget, spec.k, collect_senders, collect_receives
        )
    if spec.kind == PERIODIC:
        return _run_periodic(
            index,
            source_ids,
            budget,
            spec.period,
            spec.injections,
            collect_senders,
            collect_receives,
        )
    if spec.kind == MULTI:
        return _run_multi(
            index, source_ids, budget, collect_senders, collect_receives
        )
    if spec.kind == DELAY:
        return _run_delay(
            index,
            source_ids,
            budget,
            spec.probability,
            run_key,
            collect_senders,
            collect_receives,
        )
    if spec.kind == DYNAMIC:
        return _run_dynamic(
            index,
            source_ids,
            budget,
            spec.schedule,
            collect_senders,
            collect_receives,
        )
    return _run_stochastic(
        index,
        source_ids,
        budget,
        spec.probability,
        run_key,
        collect_senders,
        collect_receives,
    )


def _run_stochastic(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    probability: float,
    run_key: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Survival-thinned amnesiac flooding (thinning and loss variants).

    The loop is :func:`repro.fastpath.pure_backend.run` with one
    insertion: every send-mask is thinned through the counter-based
    draws before it enters the frontier, so the arcs that exist in
    round ``r`` are exactly the messages *delivered* in round ``r``
    (the complement rule and the statistics then see only survivors,
    matching the reference fault model).
    """
    full_masks = index.full_masks
    offsets = index.offsets
    n = index.n
    threshold = survival_threshold(probability)

    masks = [0] * n
    heard = [0] * n
    reached = bytearray(n)
    reached_count = len(source_ids)
    for source in source_ids:
        reached[source] = 1

    active: List[int] = []
    rkey = round_key(run_key, 1)
    for source in source_ids:
        thinned = _thin_mask(offsets[source], full_masks[source], rkey, threshold)
        if thinned:
            masks[source] = thinned
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            count += _popcount(mask)
            for receiver, rbit in _decode(index, sender, mask):
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard[receiver] | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        rkey = round_key(run_key, round_number + 1)
        next_active: List[int] = []
        for receiver in touched:
            send = full_masks[receiver] & ~heard[receiver]
            heard[receiver] = 0
            if send:
                send = _thin_mask(offsets[receiver], send, rkey, threshold)
                if send:
                    masks[receiver] = send
                    next_active.append(receiver)
        active = next_active
        round_number += 1

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _thin_mask(base: int, mask: int, rkey: int, threshold: int) -> int:
    """Keep each set bit (arc ``base + position``) independently.

    Iterates low-to-high, but the kept set is order-free: each arc's
    draw is a pure function of its slot and the round key.
    """
    kept = 0
    position = 0
    while mask:
        if mask & 1 and slot_draw(rkey, base + position) < threshold:
            kept |= 1 << position
        mask >>= 1
        position += 1
    return kept


def _run_kmemory(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    k: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """``k``-memory flooding on per-node heard-mask windows.

    A receiver's next send-mask is the complement of the *union* of its
    heard-masks over the last ``k`` rounds (``k = 1`` keeps only the
    current round -- amnesiac flooding, bit-identical to the pure
    backend; ``k = 0`` forgets even that and ping-pongs until the
    budget cuts it off).  Windows live in a sparse dict keyed by node
    id -- only nodes with history in range pay for it.
    """
    full_masks = index.full_masks
    n = index.n

    masks = [0] * n
    heard = [0] * n
    windows: Dict[int, List[Tuple[int, int]]] = {}
    reached = bytearray(n)
    reached_count = len(source_ids)

    active: List[int] = []
    for source in source_ids:
        reached[source] = 1
        if full_masks[source]:
            masks[source] = full_masks[source]
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            count += _popcount(mask)
            for receiver, rbit in _decode(index, sender, mask):
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard[receiver] | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        next_active: List[int] = []
        for receiver in touched:
            heard_mask = heard[receiver]
            heard[receiver] = 0
            if k == 0:
                avoid = 0
            elif k == 1:
                avoid = heard_mask
            else:
                window = windows.setdefault(receiver, [])
                window.append((round_number, heard_mask))
                cutoff = round_number - k
                while window and window[0][0] <= cutoff:
                    window.pop(0)
                avoid = 0
                for _, remembered in window:
                    avoid |= remembered
            send = full_masks[receiver] & ~avoid
            if send:
                masks[receiver] = send
                next_active.append(receiver)
        active = next_active
        round_number += 1

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _run_periodic(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    period: int,
    injections: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Periodic re-injection on per-node send masks.

    Mirrors :func:`repro.variants.periodic.periodic_injection_flood`
    round for round: injection ``i`` ORs the source's full out-mask
    into its pending sends at round ``1 + i * period`` (every round of
    the injection phase is counted, including empty ones -- the clock
    ticks whether or not messages fly); after the last injection the
    orbit is evolved to an exact verdict by configuration memoisation
    -- the key is the sorted ``(sender, mask)`` profile of the active
    nodes, one dict slot per distinct configuration -- under the
    settle budget (cut off only when settle round ``budget + 1`` would
    still send, the core rule).  ``len(round_counts)`` equals the
    reference's ``total_rounds`` in all three outcomes (terminated,
    limit cycle, cut off); a limit cycle reports ``terminated=False``
    exactly like the reference.
    """
    if len(source_ids) != 1:
        raise ConfigurationError(
            f"the periodic variant re-injects from a single source; "
            f"got {len(source_ids)} sources"
        )
    source = source_ids[0]
    full_masks = index.full_masks
    offsets = index.offsets
    decoders = _decoders(index)
    n = index.n

    masks = [0] * n
    heard = [0] * n
    active: List[int] = []
    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    reached = bytearray(n)
    reached[source] = 1
    total = 0

    def step(round_number: int) -> None:
        """Count, deliver and advance the pending send masks."""
        nonlocal active, total
        masks_l, heard_l, reached_l = masks, heard, reached
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks_l[sender]
            masks_l[sender] = 0
            decoder = decoders[sender]
            send_list = decoder.get(mask)
            if send_list is None:
                send_list = _decode(index, sender, mask)
                # The pure backend's memo cap: flooding shows each node
                # only ~degree distinct masks.
                if len(decoder) <= 2 * (offsets[sender + 1] - offsets[sender]) + 16:
                    decoder[mask] = send_list
            count += len(send_list)
            for receiver, rbit in send_list:
                heard_mask = heard_l[receiver]
                if not heard_mask:
                    touch(receiver)
                    # Branchless reached marking; counted once at the end.
                    reached_l[receiver] = 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard_l[receiver] = heard_mask | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        next_active: List[int] = []
        for receiver in touched:
            send = full_masks[receiver] & ~heard_l[receiver]
            heard_l[receiver] = 0
            if send:
                masks_l[receiver] = send
                next_active.append(receiver)
        active = next_active

    def profile() -> FrozenSet[Tuple[int, int]]:
        """The configuration, as a canonical hashable key.

        A frozenset of ``(sender, mask)`` pairs: senders are distinct,
        so set equality is exactly configuration equality, with no sort
        over the (potentially graph-sized) active list.  The key is
        only hashed and compared, never iterated.
        """
        return frozenset((v, masks[v]) for v in active)

    last_injection = 1 + (injections - 1) * period
    for round_number in range(1, last_injection + 1):
        if (round_number - 1) % period == 0:
            if not masks[source] and full_masks[source]:
                active.append(source)
            masks[source] |= full_masks[source]
        step(round_number)

    seen: Dict[FrozenSet[Tuple[int, int]], int] = {profile(): 0}
    settle = 0
    terminated = True
    while active:
        if settle + 1 > budget:
            terminated = False
            break
        step(last_injection + settle + 1)
        settle += 1
        key = profile()
        if key in seen:
            terminated = False
            break
        seen[key] = settle

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        sum(reached),
    )


def _run_multi(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Concurrent distinct-payload floods: independent masks, one fold.

    Amnesia means payloads cannot interfere (the independence invariant
    of :mod:`repro.variants.multi_message`), so the stepper runs one
    plain pure-backend flood per source/payload and superimposes the
    statistics: per-round counts add (payloads never collapse into one
    message -- they are distinct), senders and receive rounds union
    with per-round dedup, the run terminates when every payload does,
    and the combined length is the last round in which *any* payload
    still sent.  Bit-identical to
    :func:`~repro.variants.multi_message.concurrent_floods` of one
    payload per source.
    """
    full_masks = index.full_masks
    offsets = index.offsets
    decoders = _decoders(index)
    n = index.n

    combined_counts: List[int] = []
    sender_sets: Optional[List[Set[int]]] = [] if collect_senders else None
    receive_sets: Optional[List[Set[int]]] = (
        [set() for _ in range(n)] if collect_receives else None
    )
    reached = bytearray(n)
    reached_count = 0
    for source in source_ids:
        if not reached[source]:
            reached[source] = 1
            reached_count += 1
    total = 0
    terminated = True

    for source in source_ids:
        masks = [0] * n
        heard = [0] * n
        active: List[int] = []
        if full_masks[source]:
            masks[source] = full_masks[source]
            active.append(source)
        round_number = 1
        while active:
            if round_number > budget:
                terminated = False
                break
            count = 0
            touched: List[int] = []
            touch = touched.append
            for sender in active:
                mask = masks[sender]
                masks[sender] = 0
                decoder = decoders[sender]
                send_list = decoder.get(mask)
                if send_list is None:
                    send_list = _decode(index, sender, mask)
                    if len(decoder) <= 2 * (offsets[sender + 1] - offsets[sender]) + 16:
                        decoder[mask] = send_list
                count += len(send_list)
                for receiver, rbit in send_list:
                    if not heard[receiver]:
                        touch(receiver)
                        if not reached[receiver]:
                            reached[receiver] = 1
                            reached_count += 1
                        if receive_sets is not None:
                            receive_sets[receiver].add(round_number)
                    heard[receiver] = heard[receiver] | rbit
            if round_number > len(combined_counts):
                combined_counts.append(count)
            else:
                combined_counts[round_number - 1] += count
            total += count
            if sender_sets is not None:
                while len(sender_sets) < round_number:
                    sender_sets.append(set())
                sender_sets[round_number - 1].update(active)
            next_active: List[int] = []
            for receiver in touched:
                send = full_masks[receiver] & ~heard[receiver]
                heard[receiver] = 0
                if send:
                    masks[receiver] = send
                    next_active.append(receiver)
            active = next_active
            round_number += 1

    sender_rounds = (
        [sorted(senders) for senders in sender_sets]
        if sender_sets is not None
        else None
    )
    receives = (
        [sorted(rounds) for rounds in receive_sets]
        if receive_sets is not None
        else None
    )
    return (
        terminated,
        combined_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _run_delay(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    probability: float,
    run_key: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Step-granular random-delay asynchrony on per-node send masks.

    The arc-mask form of :func:`repro.asynchrony.engine.run_async`
    under the counter-keyed delay adversary
    (:class:`repro.asynchrony.adversary.CounterDelayAdversary`, which
    consumes the *same* coordinates): each step draws
    ``slot_draw(round_key(run_key, step), slot)`` per in-transit arc
    and holds the arc iff the draw falls below
    ``survival_threshold(probability)``; if the coins held everything,
    the single arc with the smallest ``(draw, slot)`` is delivered so
    time progresses.  Delivered arcs apply the amnesiac rule (forward
    to the complement of this step's senders); forwards merge with held
    arcs by mask OR, exactly as the set union of
    :func:`~repro.asynchrony.configurations.apply_delivery`.
    ``round_counts`` holds per-*step* delivered-message counts, so
    ``len(round_counts)`` is the async run's step count.
    """
    offsets = index.offsets
    full_masks = index.full_masks
    n = index.n
    threshold = survival_threshold(probability)

    masks = [0] * n
    heard = [0] * n
    queued = bytearray(n)
    active: List[int] = []
    reached = bytearray(n)
    reached_count = 0
    for source in source_ids:
        if not reached[source]:
            reached[source] = 1
            reached_count += 1
        if full_masks[source]:
            masks[source] = full_masks[source]
            active.append(source)

    step_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True

    for step_number in range(1, budget + 1):
        if not active:
            break
        rkey = round_key(run_key, step_number)
        # Draw per in-transit arc, splitting each sender's mask into a
        # held and a delivered half.  The forced-delivery fallback
        # tracks the global minimum (draw, slot) with strict
        # comparisons, so it is independent of iteration order.
        deliveries: List[Tuple[int, int]] = []
        best_draw = -1
        best_slot = -1
        best_sender = -1
        best_bit = 0
        for sender in active:
            mask = masks[sender]
            base = offsets[sender]
            held, position, draw = mask_hold_split(rkey, base, mask, threshold)
            slot = base + position
            if (
                best_draw < 0
                or draw < best_draw
                or (draw == best_draw and slot < best_slot)
            ):
                best_draw = draw
                best_slot = slot
                best_sender = sender
                best_bit = 1 << position
            delivered = mask & ~held
            masks[sender] = held
            if delivered:
                deliveries.append((sender, delivered))
        if not deliveries:
            masks[best_sender] ^= best_bit
            deliveries.append((best_sender, best_bit))

        count = 0
        touched: List[int] = []
        touch = touched.append
        owners: List[int] = []
        for sender, delivered in deliveries:
            owners.append(sender)
            count += _popcount(delivered)
            for receiver, rbit in _decode(index, sender, delivered):
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(step_number)
                heard[receiver] = heard[receiver] | rbit
        step_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(owners))
        for receiver in touched:
            send = full_masks[receiver] & ~heard[receiver]
            heard[receiver] = 0
            if send:
                masks[receiver] = masks[receiver] | send
        next_active: List[int] = []
        for node in active:
            if masks[node]:
                queued[node] = 1
                next_active.append(node)
        for node in touched:
            if masks[node] and not queued[node]:
                queued[node] = 1
                next_active.append(node)
        for node in next_active:
            queued[node] = 0
        active = next_active
    else:
        if active:
            terminated = False

    return (
        terminated,
        step_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _run_dynamic(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    schedule: ArcSchedule,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Amnesiac flooding over an arc-diff schedule.

    Runs entirely in the *superset* graph's slot space: round ``r``
    delivers the pending sends (live by construction), and receivers
    forward to the complement of this round's senders masked by round
    ``r + 1``'s activation -- the arc-mask form of "forward over the
    next round's topology", matching
    :func:`repro.variants.dynamic.simulate_dynamic` round for round.
    The schedule's global round masks are split into per-node CSR
    blocks once per *distinct* mask (memoised for the run), so a
    round's topology costs one AND per forwarding node.  The spec's
    graph must share the superset's node set (ids then align, both
    being sorted-label orders).
    """
    sindex = IndexedGraph.of(schedule.graph)
    if sindex.labels != index.labels:
        raise ConfigurationError(
            "the dynamic variant's schedule must share the spec graph's "
            "node set (the superset graph adds edges, never nodes)"
        )
    full_masks = sindex.full_masks
    soffsets = sindex.offsets
    decoders = _decoders(sindex)
    n = sindex.n
    mask_at = schedule.mask_at

    split_by_mask: Dict[int, List[int]] = {}

    def live(round_number: int) -> List[int]:
        gmask = mask_at(round_number)
        split = split_by_mask.get(gmask)
        if split is None:
            split = _split_mask(sindex, gmask)
            split_by_mask[gmask] = split
        return split

    masks = [0] * n
    heard = [0] * n
    active: List[int] = []
    reached = bytearray(n)
    reached_count = 0
    first_live = live(1)
    for source in source_ids:
        if not reached[source]:
            reached[source] = 1
            reached_count += 1
        send = full_masks[source] & first_live[source]
        if send:
            masks[source] = send
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            decoder = decoders[sender]
            send_list = decoder.get(mask)
            if send_list is None:
                send_list = _decode(sindex, sender, mask)
                if len(decoder) <= 2 * (soffsets[sender + 1] - soffsets[sender]) + 16:
                    decoder[mask] = send_list
            count += len(send_list)
            for receiver, rbit in send_list:
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard[receiver] | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        next_live = live(round_number + 1)
        next_active: List[int] = []
        for receiver in touched:
            send = full_masks[receiver] & ~heard[receiver] & next_live[receiver]
            heard[receiver] = 0
            if send:
                masks[receiver] = send
                next_active.append(receiver)
        active = next_active
        round_number += 1

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _split_mask(index: IndexedGraph, gmask: int) -> List[int]:
    """Split a global arc mask into per-node CSR-block send masks.

    Exports the big int to bytes once and walks the set bits with the
    byte table, so the cost is O(arcs / 8 + set bits) -- never the
    quadratic low-bit walk over the whole mask.
    """
    offsets = index.offsets
    out = [0] * index.n
    data = gmask.to_bytes((index.num_arcs + 7) // 8, "little")
    byte_bits = _BYTE_BITS
    node = 0
    for byte_index, byte in enumerate(data):
        if not byte:
            continue
        base = byte_index * 8
        for k in byte_bits[byte]:
            slot = base + k
            while slot >= offsets[node + 1]:
                node += 1
            out[node] |= 1 << (slot - offsets[node])
    return out


# ----------------------------------------------------------------------
# Monte-Carlo aggregation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VariantSummary:
    """Aggregate of a seeded trial batch of one variant.

    Field semantics follow the reference surveys
    (:class:`repro.variants.lossy.LossySummary`): rates and means are
    over *all* trials, terminated or not; ``coverage`` is the mean
    fraction of the source's component that ever held the message.
    """

    variant: VariantSpec
    trials: int
    termination_rate: float
    mean_rounds: float
    mean_messages: float
    coverage: float


def variant_survey(
    graph: Graph,
    source: Node,
    variant: VariantSpec,
    trials: int,
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> VariantSummary:
    """Monte-Carlo summary of a variant from one source, on the fast path.

    Trial ``i`` draws from the stream ``derive_key(variant.seed, i)``,
    so the summary is bit-identical for every ``workers`` /
    ``chunksize`` choice (the pool shards the batch; the keys do not
    move) and matches the counter-seeded reference surveys trial for
    trial.  ``workers=None`` auto-sizes exactly like
    :func:`repro.parallel.parallel_sweep`.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    from repro.graphs.traversal import bfs_distances
    from repro.parallel import parallel_sweep

    component = len(bfs_distances(graph, source))
    runs = parallel_sweep(
        graph,
        [[source]] * trials,
        max_rounds=max_rounds,
        variant=variant,
        workers=workers,
        chunksize=chunksize,
    )
    terminated = 0
    rounds_total = 0
    messages_total = 0
    coverage_total = 0.0
    for run in runs:
        if run.terminated:
            terminated += 1
        rounds_total += run.termination_round
        messages_total += run.total_messages
        coverage_total += run.reached_count / component
    return VariantSummary(
        variant=variant,
        trials=trials,
        termination_rate=terminated / trials,
        mean_rounds=rounds_total / trials,
        mean_messages=messages_total / trials,
        coverage=coverage_total / trials,
    )
