"""Arc-mask steppers for the stochastic and memory variants.

The flooding variants of :mod:`repro.variants` (probabilistic thinning,
Bernoulli message loss, ``k``-memory windows) were the last major
workload still running on the set-based reference stepper.  This module
ports the hot ones onto the CSR index and the per-node bitmask frontier
of :mod:`repro.fastpath.pure_backend`, so Monte-Carlo surveys --
hundreds of seeded trials per parameter point, exactly the batch shape
:mod:`repro.parallel` shards -- run at fast-path cost.

Randomness
----------
Stochastic steppers draw nothing sequentially.  Every keep/drop
decision is a counter-based hash of its coordinates (:mod:`repro.rng`):

    ``survive(arc) = slot_draw(round_key(run_key, round), slot) < p``

with ``run_key = derive_key(spec.seed, run_index)``.  The consequences
are the contract of this module:

* a run's outcome depends only on ``(spec.seed, run_index)`` -- not on
  execution order, worker count, chunk size, or batch composition;
* the set-based reference implementations in :mod:`repro.variants`
  consume the *same* coordinates through the same functions, so the
  equivalence matrix (``tests/variants/test_fastpath_equivalence.py``)
  holds fast and reference runs bit-for-bit equal per variant.

Backends
--------
Variant runs execute only on the pure arc-mask stepper.  The numpy
frontier kernel and the double-cover oracle model the *deterministic*
process: the oracle in particular is a prediction of amnesiac
flooding's unique execution, which a stochastic run is not, so variant
requests never route to it -- ``backend="oracle"`` with a variant is a
:class:`~repro.errors.ConfigurationError`, and automatic selection
(:func:`variant_backend`) always resolves to ``"pure"``.

Entry points
------------
:class:`VariantSpec` (build with :func:`thinning`,
:func:`bernoulli_loss`, :func:`k_memory`) plugs into
``fastpath.sweep(..., variant=spec)``, ``parallel_sweep``,
``SweepPool.sweep`` and ``FloodService.query``;
:func:`variant_survey` is the Monte-Carlo aggregation over a trial
batch.  :func:`run_variant` is the raw per-run dispatch the engine and
the worker pool call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import _decode
from repro.graphs.graph import Graph, Node
from repro.rng import derive_key, round_key, slot_draw, survival_threshold

THINNING = "thinning"
LOSS = "loss"
KMEMORY = "kmemory"

VARIANT_KINDS = (THINNING, LOSS, KMEMORY)

try:
    _popcount = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - Python 3.9

    def _popcount(value: int) -> int:
        return bin(value).count("1")


VariantRawRun = Tuple[
    bool,  # terminated within budget
    List[int],  # per-round message counts (round 1 first)
    int,  # total messages
    Optional[List[List[int]]],  # per-round sender ids (None when not collected)
    Optional[List[List[int]]],  # per-node-id ascending receive rounds
    int,  # nodes that ever held the message (sources included)
]
"""The :data:`~repro.fastpath.pure_backend.RawRun` tuple plus a trailing
reached-node count (coverage is a headline variant statistic and too
cheap to recompute from full receive collection)."""


@dataclass(frozen=True)
class VariantSpec:
    """One variant of the flooding process, as a picklable value.

    ``kind`` selects the stepper; ``probability`` is the per-message
    *survival* probability of the stochastic kinds (``thinning`` and
    ``loss`` share dynamics -- a dropped forward and a lost message are
    the same event in the synchronous model -- and differ only in how
    callers parameterise them); ``k`` is the memory window of
    ``kmemory``; ``seed`` owns the randomness (run ``i`` of a batch
    draws from the stream ``derive_key(seed, i)``).

    Frozen and hashable: specs ride in pool task tuples and service
    micro-batch keys unchanged.  Build through :func:`thinning`,
    :func:`bernoulli_loss` or :func:`k_memory`.
    """

    kind: str
    probability: Optional[float] = None
    k: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in VARIANT_KINDS:
            raise ConfigurationError(
                f"unknown variant kind {self.kind!r}; expected one of "
                f"{VARIANT_KINDS}"
            )
        if self.kind == KMEMORY:
            if self.k is None or self.k < 0:
                raise ConfigurationError("kmemory requires k >= 0")
            if self.probability is not None:
                raise ConfigurationError("kmemory takes no probability")
        else:
            if self.probability is None or not 0.0 <= self.probability <= 1.0:
                raise ConfigurationError(
                    f"{self.kind} requires a survival probability in [0, 1]"
                )
            if self.k is not None:
                raise ConfigurationError(f"{self.kind} takes no k")

    @property
    def stochastic(self) -> bool:
        """Whether runs of this variant consume randomness."""
        return self.kind != KMEMORY

    def run_key(self, run_index: int) -> int:
        """The RNG stream key owned by run ``run_index`` of this spec."""
        return derive_key(self.seed, run_index)


def thinning(forward_probability: float, seed: int = 0) -> VariantSpec:
    """Probabilistic amnesiac flooding: forward each copy w.p. ``q``."""
    return VariantSpec(THINNING, probability=forward_probability, seed=seed)


def bernoulli_loss(loss_rate: float, seed: int = 0) -> VariantSpec:
    """Amnesiac flooding where each message is lost w.p. ``loss_rate``."""
    if not 0.0 <= loss_rate <= 1.0:
        raise ConfigurationError("loss_rate must be within [0, 1]")
    return VariantSpec(LOSS, probability=1.0 - loss_rate, seed=seed)


def k_memory(k: int) -> VariantSpec:
    """``k``-round memory windows (``k = 1`` is amnesiac flooding)."""
    return VariantSpec(KMEMORY, k=k)


def variant_backend(
    index: IndexedGraph, backend: Optional[str], spec: VariantSpec
) -> str:
    """Resolve the backend for a variant run: the pure stepper, always.

    Mirrors :func:`repro.fastpath.select_backend` for the variant
    lanes.  ``None`` auto-selects ``"pure"``; naming any other backend
    raises -- in particular the oracle, which predicts the
    deterministic process and therefore can never stand in for a
    stochastic (or non-amnesiac) execution.
    """
    return resolve_variant_backend(backend, spec)


def resolve_variant_backend(backend: Optional[str], spec: VariantSpec) -> str:
    """The index-free core of :func:`variant_backend`.

    Variant routing depends only on the names (the stepper is always
    the pure arc-mask loop), so request validation
    (:class:`~repro.api.spec.FloodSpec`) runs this without touching the
    CSR index.
    """
    if backend is None or backend == "pure":
        return "pure"
    if backend == "oracle":
        raise ConfigurationError(
            f"the double-cover oracle predicts the deterministic process; "
            f"{spec.kind!r} variant runs never route to it "
            f"(backend must be 'pure' or None)"
        )
    if backend == "numpy":
        raise ConfigurationError(
            f"the numpy kernel runs only the deterministic process; "
            f"{spec.kind!r} variant runs use backend='pure'"
        )
    raise ConfigurationError(
        f"unknown fastpath backend {backend!r} for variant {spec.kind!r}; "
        f"expected 'pure' or None"
    )


def run_variant(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    spec: VariantSpec,
    run_key: int,
    collect_senders: bool = False,
    collect_receives: bool = False,
) -> VariantRawRun:
    """One variant flood on the arc-mask stepper; raw statistics tuple.

    ``run_key`` is the already-derived RNG stream key
    (:meth:`VariantSpec.run_key`); it is threaded explicitly so sharded
    callers can key runs by their *global* batch position.  Ignored by
    the deterministic ``kmemory`` stepper.
    """
    if spec.kind == KMEMORY:
        return _run_kmemory(
            index, source_ids, budget, spec.k, collect_senders, collect_receives
        )
    return _run_stochastic(
        index,
        source_ids,
        budget,
        spec.probability,
        run_key,
        collect_senders,
        collect_receives,
    )


def _run_stochastic(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    probability: float,
    run_key: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """Survival-thinned amnesiac flooding (thinning and loss variants).

    The loop is :func:`repro.fastpath.pure_backend.run` with one
    insertion: every send-mask is thinned through the counter-based
    draws before it enters the frontier, so the arcs that exist in
    round ``r`` are exactly the messages *delivered* in round ``r``
    (the complement rule and the statistics then see only survivors,
    matching the reference fault model).
    """
    full_masks = index.full_masks
    offsets = index.offsets
    n = index.n
    threshold = survival_threshold(probability)

    masks = [0] * n
    heard = [0] * n
    reached = bytearray(n)
    reached_count = len(source_ids)
    for source in source_ids:
        reached[source] = 1

    active: List[int] = []
    rkey = round_key(run_key, 1)
    for source in source_ids:
        thinned = _thin_mask(offsets[source], full_masks[source], rkey, threshold)
        if thinned:
            masks[source] = thinned
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            count += _popcount(mask)
            for receiver, rbit in _decode(index, sender, mask):
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard[receiver] | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        rkey = round_key(run_key, round_number + 1)
        next_active: List[int] = []
        for receiver in touched:
            send = full_masks[receiver] & ~heard[receiver]
            heard[receiver] = 0
            if send:
                send = _thin_mask(offsets[receiver], send, rkey, threshold)
                if send:
                    masks[receiver] = send
                    next_active.append(receiver)
        active = next_active
        round_number += 1

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


def _thin_mask(base: int, mask: int, rkey: int, threshold: int) -> int:
    """Keep each set bit (arc ``base + position``) independently.

    Iterates low-to-high, but the kept set is order-free: each arc's
    draw is a pure function of its slot and the round key.
    """
    kept = 0
    position = 0
    while mask:
        if mask & 1 and slot_draw(rkey, base + position) < threshold:
            kept |= 1 << position
        mask >>= 1
        position += 1
    return kept


def _run_kmemory(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    k: int,
    collect_senders: bool,
    collect_receives: bool,
) -> VariantRawRun:
    """``k``-memory flooding on per-node heard-mask windows.

    A receiver's next send-mask is the complement of the *union* of its
    heard-masks over the last ``k`` rounds (``k = 1`` keeps only the
    current round -- amnesiac flooding, bit-identical to the pure
    backend; ``k = 0`` forgets even that and ping-pongs until the
    budget cuts it off).  Windows live in a sparse dict keyed by node
    id -- only nodes with history in range pay for it.
    """
    full_masks = index.full_masks
    n = index.n

    masks = [0] * n
    heard = [0] * n
    windows: Dict[int, List[Tuple[int, int]]] = {}
    reached = bytearray(n)
    reached_count = len(source_ids)

    active: List[int] = []
    for source in source_ids:
        reached[source] = 1
        if full_masks[source]:
            masks[source] = full_masks[source]
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            count += _popcount(mask)
            for receiver, rbit in _decode(index, sender, mask):
                if not heard[receiver]:
                    touch(receiver)
                    if not reached[receiver]:
                        reached[receiver] = 1
                        reached_count += 1
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard[receiver] | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            sender_rounds.append(sorted(active))
        next_active: List[int] = []
        for receiver in touched:
            heard_mask = heard[receiver]
            heard[receiver] = 0
            if k == 0:
                avoid = 0
            elif k == 1:
                avoid = heard_mask
            else:
                window = windows.setdefault(receiver, [])
                window.append((round_number, heard_mask))
                cutoff = round_number - k
                while window and window[0][0] <= cutoff:
                    window.pop(0)
                avoid = 0
                for _, remembered in window:
                    avoid |= remembered
            send = full_masks[receiver] & ~avoid
            if send:
                masks[receiver] = send
                next_active.append(receiver)
        active = next_active
        round_number += 1

    return (
        terminated,
        round_counts,
        total,
        sender_rounds,
        receives,
        reached_count,
    )


# ----------------------------------------------------------------------
# Monte-Carlo aggregation
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class VariantSummary:
    """Aggregate of a seeded trial batch of one variant.

    Field semantics follow the reference surveys
    (:class:`repro.variants.lossy.LossySummary`): rates and means are
    over *all* trials, terminated or not; ``coverage`` is the mean
    fraction of the source's component that ever held the message.
    """

    variant: VariantSpec
    trials: int
    termination_rate: float
    mean_rounds: float
    mean_messages: float
    coverage: float


def variant_survey(
    graph: Graph,
    source: Node,
    variant: VariantSpec,
    trials: int,
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> VariantSummary:
    """Monte-Carlo summary of a variant from one source, on the fast path.

    Trial ``i`` draws from the stream ``derive_key(variant.seed, i)``,
    so the summary is bit-identical for every ``workers`` /
    ``chunksize`` choice (the pool shards the batch; the keys do not
    move) and matches the counter-seeded reference surveys trial for
    trial.  ``workers=None`` auto-sizes exactly like
    :func:`repro.parallel.parallel_sweep`.
    """
    if trials < 1:
        raise ConfigurationError("trials must be >= 1")
    from repro.graphs.traversal import bfs_distances
    from repro.parallel import parallel_sweep

    component = len(bfs_distances(graph, source))
    runs = parallel_sweep(
        graph,
        [[source]] * trials,
        max_rounds=max_rounds,
        variant=variant,
        workers=workers,
        chunksize=chunksize,
    )
    terminated = 0
    rounds_total = 0
    messages_total = 0
    coverage_total = 0.0
    for run in runs:
        if run.terminated:
            terminated += 1
        rounds_total += run.termination_round
        messages_total += run.total_messages
        coverage_total += run.reached_count / component
    return VariantSummary(
        variant=variant,
        trials=trials,
        termination_rate=terminated / trials,
        mean_rounds=rounds_total / trials,
        mean_messages=messages_total / trials,
        coverage=coverage_total / trials,
    )
