"""The bitset oracle: 64 floods per cover sweep, one BFS pass per batch.

The per-source oracle backend (:mod:`repro.fastpath.oracle_backend`)
answers one flood in O(n + m) by BFS over the implicit double cover.
A sweep-shaped workload -- ``all_pairs_termination``, the receipt
census, any large homogeneous deterministic batch -- asks the *same*
BFS question from many source sets over one frozen CSR index, and
those searches share all of their structure: every pass walks the same
arcs, only the seed sets differ.

This module word-packs that redundancy away.  Each cover state
``2 * v + parity`` carries a row of ``uint64`` words -- bit ``b`` of
the row is "run ``b`` has reached this state" -- so one frontier sweep
advances 64 runs per word per step:

* ``reached[s]`` accumulates the runs that have reached state ``s``;
* one BFS step ORs every frontier row into its neighbour states
  (neighbours of a node are distinct, so a fancy-indexed in-place OR
  is exact), masks out already-reached bits, and records the BFS level
  of every *newly set* bit in a per-run distance column;
* the sweep ends when no run gains a new state.

The result is the full ``(2n, batch)`` cover-level matrix of the batch
in O((n + m) * batch / 64) word operations -- the same asymptotics as
``batch`` single-source passes, but with a 64-way word parallelism and
numpy constants instead of a Python BFS per run.  Distances are plain
BFS levels, so every downstream statistic is **bit-identical** to the
per-source oracle by construction:

* heavy collections (sender sets, receive rounds) hand each run's
  level column to the *same*
  :func:`~repro.fastpath.oracle_backend.stats_from_levels` the
  per-source backend runs;
* the light sweep statistics (termination round, per-round message
  counts, totals -- the collection-free default of every sweep) are
  re-derived vectorised across the whole batch: one edge-crossing
  matrix per cover parity and one flat ``bincount`` per block, with
  every emitted value converted back to a Python int.

Word-packing layout: run ``b`` lives in word ``b // 64``, bit
``b % 64``; bit positions map to runs through the little-endian byte
order of ``uint64`` (the ``unpackbits(..., bitorder="little")``
decode), with an explicit byte-order normalisation for big-endian
hosts.  Batches larger than :data:`BLOCK_RUNS` process in blocks so
the dense level matrix stays small regardless of batch size.

Routing: this is an execution strategy for the **oracle** backend, not
a fourth backend name -- results still report ``backend="oracle"``.
:func:`repro.fastpath.engine.dispatch_batch` picks it for homogeneous
deterministic oracle batches of at least
:data:`~repro.fastpath.engine.BITSET_MIN_BATCH` runs when numpy is
importable (never for variants: their steppers are stochastic
executions, not cover predictions), and every batch tier -- the serial
spec sweep, the :class:`~repro.parallel.SweepPool` chunk bodies and
the service's serial executor -- funnels through that one gate.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.numpy_backend import HAS_NUMPY, _arrays, _np
from repro.fastpath.oracle_backend import stats_from_levels
from repro.fastpath.pure_backend import RawRun

WORD_BITS = 64
"""Runs per packed word (the uint64 bitset column width)."""

BLOCK_RUNS = 256
"""Runs per internal block: caps the dense level matrix at
``2n * BLOCK_RUNS`` int32 entries (and the edge-crossing matrices at
``m * BLOCK_RUNS``) however large the submitted batch is."""


def _require_numpy() -> None:
    if _np is None:  # pragma: no cover - guarded by the dispatcher
        raise RuntimeError(
            "bitset oracle requested but numpy is not importable"
        )


def cover_levels_batch(
    index: IndexedGraph, id_lists: Sequence[Sequence[int]]
) -> "object":
    """Cover BFS levels for a whole batch: one ``(2n, batch)`` matrix.

    Column ``b`` is exactly
    :func:`repro.fastpath.oracle_backend.cover_levels` of
    ``id_lists[b]`` (``-1`` for unreachable states); the batch floods
    in a single word-packed frontier sweep.
    """
    _require_numpy()
    arrays = _arrays(index)
    offsets = index.offsets
    targets = arrays.targets
    n = index.n
    batch = len(id_lists)
    words = -(-batch // WORD_BITS)  # ceil division; >= 1 tail included

    reached = _np.zeros((2 * n, words), dtype=_np.uint64)
    frontier = _np.zeros((2 * n, words), dtype=_np.uint64)
    acc = _np.zeros((2 * n, words), dtype=_np.uint64)
    dist = _np.full((2 * n, batch), -1, dtype=_np.int32)
    for position, source_ids in enumerate(id_lists):
        word = position >> 6
        bit = _np.uint64(1 << (position & 63))
        for source in source_ids:
            state = 2 * source
            reached[state, word] |= bit
            dist[state, position] = 0
    frontier[:] = reached
    # Sorted state ids: deterministic sweep order (results only depend
    # on the OR-accumulated words, but determinism costs nothing).
    active = _np.flatnonzero(reached.any(axis=1))

    level = 0
    while active.size:
        level += 1
        touched_parts = []
        for state in active.tolist():
            v = state >> 1
            start, stop = offsets[v], offsets[v + 1]
            if start == stop:
                continue
            # Crossing an arc flips the cover parity.  A node's CSR
            # neighbours are distinct, so the fancy-indexed in-place OR
            # hits every destination row exactly once.
            neighbour_states = 2 * targets[start:stop] + (1 - (state & 1))
            acc[neighbour_states] |= frontier[state]
            touched_parts.append(neighbour_states)
        frontier[active] = 0
        if not touched_parts:
            break
        touched = _np.unique(_np.concatenate(touched_parts))
        fresh = acc[touched] & ~reached[touched]
        acc[touched] = 0
        gained = fresh.any(axis=1)
        active = touched[gained]
        if not active.size:
            break
        fresh = fresh[gained]
        reached[active] |= fresh
        frontier[active] = fresh
        # Decode the new bits into (state row, run column) level writes.
        # Bit b of a word is run `word * 64 + b`, which is position b of
        # the little-endian byte decode; normalise on big-endian hosts.
        packed = fresh if _np.little_endian else fresh.astype("<u8")
        bits = _np.unpackbits(
            packed.view(_np.uint8), axis=1, bitorder="little"
        )[:, :batch]
        rows, cols = bits.nonzero()
        dist[active[rows], cols] = level
    return dist


def run_batch(
    index: IndexedGraph,
    id_lists: Sequence[Sequence[int]],
    budget: int,
    collect_senders: bool = False,
    collect_receives: bool = False,
) -> List[RawRun]:
    """Run a batch of oracle floods word-packed; one RawRun per source set.

    Every element is bit-identical to
    ``oracle_backend.run(index, ids, budget, ...)`` of the matching
    source-id list -- the equivalence matrix in
    ``tests/fastpath/test_bitset_oracle.py`` pins this across graph
    families, batch shapes and budget cut-offs.
    """
    _require_numpy()
    results: List[RawRun] = []
    for start in range(0, len(id_lists), BLOCK_RUNS):
        block = id_lists[start : start + BLOCK_RUNS]
        dist = cover_levels_batch(index, block)
        if collect_senders or collect_receives:
            # Heavy collections are per-run payloads anyway: hand each
            # level column to the per-source statistics code verbatim.
            for offset in range(len(block)):
                results.append(
                    stats_from_levels(
                        index,
                        dist[:, offset].tolist(),
                        budget,
                        collect_senders=collect_senders,
                        collect_receives=collect_receives,
                    )
                )
        else:
            results.extend(_light_stats(index, dist, budget))
    return results


def _light_stats(
    index: IndexedGraph, dist: "object", budget: int
) -> List[RawRun]:
    """Collection-free statistics for one level-matrix block, vectorised.

    The sweep default: termination flag, per-round directed-message
    counts and totals only.  Each undirected cover edge
    ``{(v, p), (w, 1 - p)}`` carries one message at the max of its
    endpoint levels; enumerating CSR slots with ``owner < target``
    visits every cover edge once per parity, and a flat per-run
    ``bincount`` over the crossing rounds rebuilds every run's
    ``round_counts`` without a Python edge loop.
    """
    arrays = _arrays(index)
    edge_mask = arrays.owner < arrays.targets
    tails = arrays.owner[edge_mask]
    heads = arrays.targets[edge_mask]
    batch = dist.shape[1]

    even = dist[0::2]
    odd = dist[1::2]
    horizon = dist.max(axis=0)  # per run: the true termination round T
    terminated = horizon <= budget
    executed = _np.minimum(horizon, budget)
    width = int(executed.max()) + 1
    counts = _np.zeros(batch * width, dtype=_np.int64)
    for tail_levels, head_levels in (
        (even[tails], odd[heads]),
        (odd[tails], even[heads]),
    ):
        crossing = _np.maximum(tail_levels, head_levels)
        valid = (tail_levels >= 0) & (head_levels >= 0)
        valid &= crossing <= executed[_np.newaxis, :]
        rows, cols = valid.nonzero()
        if rows.size:
            flat = cols * width + crossing[rows, cols]
            counts += _np.bincount(flat, minlength=batch * width)
    counts = counts.reshape(batch, width)

    results: List[RawRun] = []
    for position in range(batch):
        cutoff = int(executed[position])
        round_counts = [int(c) for c in counts[position, 1 : cutoff + 1]]
        results.append(
            (
                bool(terminated[position]),
                round_counts,
                sum(round_counts),
                None,
                None,
            )
        )
    return results


__all__ = [
    "BLOCK_RUNS",
    "HAS_NUMPY",
    "WORD_BITS",
    "cover_levels_batch",
    "run_batch",
]
