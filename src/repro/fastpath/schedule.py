"""Arc-diff schedules: dynamic graphs as per-round masks over one CSR index.

``repro.variants.dynamic`` models a dynamic network as a
``GraphSchedule`` -- an object that materialises a full ``Graph`` per
round.  That is the right interface for *describing* dynamics, but the
wrong shape for the fast path: every round would re-index a fresh
topology, and the schedule itself (an arbitrary Python object, often
seeded and stateful) cannot serve as a content-addressed cache key.

:class:`ArcSchedule` freezes a dynamic graph into fast-path form:

* ``graph`` -- the **superset graph**: one immutable :class:`Graph`
  containing every edge that is live in *any* round.  Its CSR index
  (:class:`~repro.fastpath.indexed.IndexedGraph`) fixes the slot
  numbering once for the whole run;
* ``masks`` -- one activation bitmask per round, over the superset's
  arc slots: bit ``j`` set means the directed arc at slot ``j`` is
  live that round.  Masks are symmetric (an edge is live in both
  directions or neither), matching the undirected graphs the schedule
  protocol produces;
* ``cycle_from`` -- how rounds beyond ``len(masks)`` behave: ``None``
  holds the last mask forever (the exporter uses this for a finite
  horizon that already covers the run budget), while an index ``c``
  repeats ``masks[c:]`` cyclically (exact for periodic schedules).

The dataclass is frozen, hashable and picklable with no hidden state,
so an ``ArcSchedule`` rides :class:`~repro.api.spec.FloodSpec` through
the sweep pool and the result cache exactly like a probability or a
seed.  Its :meth:`content_digest` covers the superset graph's content
digest plus every mask, and ``repr`` embeds that digest so
``FloodSpec.digest()`` (which hashes field reprs) keys cache entries by
schedule *content*, not object identity.

Build one by hand, or export one from any ``GraphSchedule`` with
:func:`repro.variants.dynamic.export_arc_schedule`.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import _BYTE_BITS
from repro.graphs.graph import Graph, Node


@dataclass(frozen=True)
class ArcSchedule:
    """A dynamic graph frozen into per-round arc masks over one index.

    ``masks[i]`` is the activation mask of round ``i + 1`` (rounds are
    1-based everywhere in this repo).  See the module docstring for the
    ``cycle_from`` extension rule.
    """

    graph: Graph
    masks: Tuple[int, ...]
    cycle_from: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.masks, tuple) or not self.masks:
            raise ConfigurationError(
                "an ArcSchedule needs a non-empty tuple of round masks"
            )
        index = IndexedGraph.of(self.graph)
        full = (1 << index.num_arcs) - 1
        reverse_slot = index.reverse_slot
        mask_bytes = (index.num_arcs + 7) // 8
        byte_bits = _BYTE_BITS
        for position, mask in enumerate(self.masks):
            if not isinstance(mask, int) or mask < 0 or mask > full:
                raise ConfigurationError(
                    f"round-{position + 1} mask is outside the superset "
                    f"graph's {index.num_arcs} arc slots"
                )
            # Byte-table walk: testing the reverse bit against the byte
            # buffer keeps validation linear in the mask width (big-int
            # shifts per set bit would be quadratic on large graphs).
            data = mask.to_bytes(mask_bytes, "little")
            for byte_index, byte in enumerate(data):
                if not byte:
                    continue
                base = byte_index * 8
                for k in byte_bits[byte]:
                    slot = base + k
                    reverse = reverse_slot[slot]
                    if not (data[reverse >> 3] >> (reverse & 7)) & 1:
                        raise ConfigurationError(
                            f"round-{position + 1} mask is asymmetric: "
                            f"slot {slot} is live but its reverse "
                            f"{reverse} is not (undirected edges "
                            "are live in both directions or neither)"
                        )
        if self.cycle_from is not None and not (
            0 <= self.cycle_from < len(self.masks)
        ):
            raise ConfigurationError(
                f"cycle_from={self.cycle_from!r} must index into the "
                f"{len(self.masks)} masks"
            )

    def mask_at(self, round_number: int) -> int:
        """The activation mask of 1-based round ``round_number``."""
        if round_number < 1:
            raise ConfigurationError("rounds are 1-based")
        i = round_number - 1
        if i < len(self.masks):
            return self.masks[i]
        if self.cycle_from is None:
            return self.masks[-1]
        period = len(self.masks) - self.cycle_from
        return self.masks[self.cycle_from + (i - self.cycle_from) % period]

    def content_digest(self) -> str:
        """SHA-256 over the superset graph's content plus every mask.

        Two schedules with the same digest produce the same per-round
        topology for every round -- this is what keys the result cache.
        """
        hasher = hashlib.sha256()
        hasher.update(self.graph.content_digest().encode("ascii"))
        hasher.update(f"|cycle_from={self.cycle_from!r}|".encode("ascii"))
        for mask in self.masks:
            hasher.update(format(mask, "x").encode("ascii"))
            hasher.update(b",")
        return hasher.hexdigest()

    def __repr__(self) -> str:
        # FloodSpec.digest() hashes field *reprs*; Graph's repr is not
        # content-complete, so the schedule repr embeds the full content
        # digest to make spec digests collision-safe by construction.
        return (
            f"ArcSchedule(rounds={len(self.masks)}, "
            f"cycle_from={self.cycle_from!r}, "
            f"digest={self.content_digest()})"
        )

    def as_graph_schedule(self) -> "ArcScheduleView":
        """A ``GraphSchedule``-shaped view for the set-based reference."""
        return ArcScheduleView(self)


class ArcScheduleView:
    """Adapts an :class:`ArcSchedule` to the ``GraphSchedule`` protocol.

    ``graph_at`` materialises the round's live edges as a full
    :class:`Graph` (isolated nodes included, so the node set is shared
    across rounds as ``simulate_dynamic`` requires).  Graphs are built
    once per *distinct mask value* -- periodic and eventually-static
    schedules touch only a handful of masks however long the run.
    """

    def __init__(self, schedule: ArcSchedule) -> None:
        self.schedule = schedule
        self._graphs_by_mask: Dict[int, Graph] = {}

    def graph_at(self, round_number: int) -> Graph:
        mask = self.schedule.mask_at(round_number)
        built = self._graphs_by_mask.get(mask)
        if built is not None:
            return built
        index = IndexedGraph.of(self.schedule.graph)
        edges: List[Tuple[Node, Node]] = []
        reverse_slot = index.reverse_slot
        # Ascending byte-table walk; masks are symmetric (validated at
        # construction), so each undirected edge is emitted at the
        # smaller of its two slots -- same order the low-bit walk gave.
        data = mask.to_bytes((index.num_arcs + 7) // 8, "little")
        for byte_index, byte in enumerate(data):
            if not byte:
                continue
            base = byte_index * 8
            for k in _BYTE_BITS[byte]:
                slot = base + k
                if slot < reverse_slot[slot]:
                    edges.append(index.arc_of_slot(slot))
        built = Graph.from_edges(edges, isolated=index.labels)
        self._graphs_by_mask[mask] = built
        return built
