"""The pure-Python fast backend: per-node integer bitmask frontier.

The global state of amnesiac flooding is the set of directed arcs
carrying ``M``.  This backend stores that set as *per-sender bitmasks*:
``masks[v]`` has bit ``k`` set iff ``v`` sends to its ``k``-th CSR
neighbour this round, and ``active`` lists the senders with a non-empty
mask.  One round is then

1. for every set bit of every active sender, OR the arc's
   :attr:`~repro.fastpath.indexed.IndexedGraph.reverse_bit` into the
   receiver's heard-mask (first touch records the receive round);
2. every touched receiver's next send-mask is
   ``full_mask & ~heard_mask`` -- "forward to the complement of the
   neighbours you heard from", Definition 1.1 verbatim.

Decoding a send-mask into ``(receiver, reverse_bit)`` pairs is memoised
per ``(node, mask)``: flooding reuses a handful of masks per node (the
full mask, and the full mask minus each single heard neighbour), so
after the first round almost every decode is one dict hit and the
per-message work collapses to an iterate-and-OR over a cached tuple.
The memo lives on the :class:`IndexedGraph` (amortised across runs and
sweeps) and is capped per node so adversarial mask sequences cannot
balloon it; uncached masks decode through a 256-entry byte table.

Everything in the hot loop is small-int arithmetic on two reused
length-``n`` lists -- no tuple hashing, no set churn, no per-round
allocation proportional to ``n``.  Cost per round is
O(messages + receivers).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fastpath.indexed import IndexedGraph

_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(k for k in range(8) if byte >> k & 1) for byte in range(256)
)
"""For each byte value, the ascending positions of its set bits."""

_SendList = Tuple[Tuple[int, int], ...]

RawRun = Tuple[
    bool,  # terminated within budget
    List[int],  # per-round directed-message counts (round 1 first)
    int,  # total messages
    Optional[List[List[int]]],  # per-round sender ids (None when not collected)
    Optional[List[List[int]]],  # per-node-id ascending receive rounds
]


def _decoders(index: IndexedGraph) -> List[Dict[int, _SendList]]:
    cache = index._send_cache
    if cache is None:
        cache = [{} for _ in range(index.n)]
        index._send_cache = cache
    return cache


def _decode(index: IndexedGraph, sender: int, mask: int) -> _SendList:
    """Expand a send-mask into its ``(receiver, reverse_bit)`` pairs."""
    targets = index.targets
    reverse_bit = index.reverse_bit
    byte_bits = _BYTE_BITS
    base = index.offsets[sender]
    pairs: List[Tuple[int, int]] = []
    while mask:
        for k in byte_bits[mask & 255]:
            slot = base + k
            pairs.append((targets[slot], reverse_bit[slot]))
        mask >>= 8
        base += 8
    return tuple(pairs)


def run(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    collect_senders: bool = True,
    collect_receives: bool = True,
) -> RawRun:
    """Run amnesiac flooding from ``source_ids`` under a round budget."""
    full_masks = index.full_masks
    offsets = index.offsets
    decoders = _decoders(index)
    n = index.n

    masks = [0] * n
    heard = [0] * n
    active: List[int] = []
    for source in source_ids:
        if full_masks[source]:
            masks[source] = full_masks[source]
            active.append(source)

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while active:
        if round_number > budget:
            terminated = False
            break
        count = 0
        touched: List[int] = []
        touch = touched.append
        for sender in active:
            mask = masks[sender]
            masks[sender] = 0
            decoder = decoders[sender]
            send_list = decoder.get(mask)
            if send_list is None:
                send_list = _decode(index, sender, mask)
                # Flooding shows each node only ~degree distinct masks;
                # cap the memo so pathological mask sequences (arc-mask
                # configuration sweeps) cannot balloon it.
                if len(decoder) <= 2 * (offsets[sender + 1] - offsets[sender]) + 16:
                    decoder[mask] = send_list
            count += len(send_list)
            for receiver, rbit in send_list:
                heard_mask = heard[receiver]
                if not heard_mask:
                    touch(receiver)
                    if receives is not None:
                        receives[receiver].append(round_number)
                heard[receiver] = heard_mask | rbit
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            # Ascending ids, matching the numpy and oracle backends, so
            # raw sender lists are comparable across backends.
            sender_rounds.append(sorted(active))
        next_active: List[int] = []
        for receiver in touched:
            next_mask = full_masks[receiver] & ~heard[receiver]
            heard[receiver] = 0
            if next_mask:
                masks[receiver] = next_mask
                next_active.append(receiver)
        active = next_active
        round_number += 1

    return terminated, round_counts, total, sender_rounds, receives
