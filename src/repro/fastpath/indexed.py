"""CSR indexing: freeze a :class:`~repro.graphs.graph.Graph` into flat arrays.

The hashable-node :class:`Graph` is the right type for building and
analysing topologies, but its dict-of-frozensets adjacency is the wrong
shape for the flooding hot loop: every round of the set-based simulator
re-hashes node labels and rebuilds tuple sets.  :class:`IndexedGraph`
freezes a graph once into compressed-sparse-row form:

* ``labels`` / ``ids`` -- the label <-> contiguous-int-id bijection
  (ids follow :func:`~repro.graphs.graph.sort_nodes` order, so id order
  agrees with ``graph.nodes()``);
* ``offsets`` / ``targets`` -- the CSR adjacency: the neighbours of
  node ``v`` are ``targets[offsets[v]:offsets[v + 1]]``, ascending.
  Each index into ``targets`` is a *slot*: slot ``j`` in ``v``'s block
  is the directed arc ``v -> targets[j]``.  The arrays are flat Python
  lists of small ints -- ``list`` indexing returns the cached int
  object where ``array('l')`` would box a fresh one per access, which
  is a measurable difference in the pure backend's per-message loop
  (the numpy backend converts them to ``int64`` ndarrays once);
* ``reverse_slot`` -- for every slot, the slot of the opposite arc
  (an involution over slots);
* ``reverse_bit`` -- ``1 << local_position(reverse_slot)``: the bit a
  delivery along the arc sets in the *receiver's* heard-mask;
* ``full_masks`` -- per node, the all-neighbours bitmask
  ``(1 << degree) - 1``.

Indexing is O(n + m log d) and is amortised across runs by
:meth:`IndexedGraph.of`, a small equality-keyed LRU (graphs are
immutable and hashable, so repeated sweeps over the same topology --
``all_pairs_termination``, the configuration census, the scaling
benchmarks -- index exactly once).
"""

from __future__ import annotations

from bisect import bisect_left
from collections import OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError, NodeNotFoundError
from repro.graphs.graph import Graph, Node

# repro-lint: disable=REP007 -- pure memo LRU: an IndexedGraph is a pure function of its Graph key, so per-process warmth never changes results; stripped from pickles below
_INDEX_CACHE: "OrderedDict[Graph, IndexedGraph]" = OrderedDict()
_INDEX_CACHE_SIZE = 16


class IndexedGraph:
    """An immutable CSR view of a :class:`Graph` for the fast backends."""

    __slots__ = (
        "graph",
        "n",
        "num_arcs",
        "labels",
        "ids",
        "offsets",
        "targets",
        "reverse_slot",
        "reverse_bit",
        "full_masks",
        "_numpy_arrays",
        "_send_cache",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.labels: Tuple[Node, ...] = graph.nodes()
        self.ids: Dict[Node, int] = {
            label: index for index, label in enumerate(self.labels)
        }
        self.n = len(self.labels)

        offsets = [0]
        targets: List[int] = []
        ids = self.ids
        for label in self.labels:
            block = sorted(ids[neighbour] for neighbour in graph.neighbors(label))
            targets.extend(block)
            offsets.append(len(targets))
        self.offsets = offsets
        self.targets = targets
        self.num_arcs = len(targets)

        reverse_slot: List[int] = []
        reverse_bit: List[int] = []
        full_masks: List[int] = []
        for v in range(self.n):
            start, stop = offsets[v], offsets[v + 1]
            full_masks.append((1 << (stop - start)) - 1)
            for j in range(start, stop):
                u = targets[j]
                mirror = self._slot_of(u, v)
                reverse_slot.append(mirror)
                reverse_bit.append(1 << (mirror - offsets[u]))
        self.reverse_slot = reverse_slot
        self.reverse_bit = reverse_bit
        self.full_masks = full_masks
        self._numpy_arrays = None  # lazily built by the numpy backend
        self._send_cache = None  # lazily built by the pure backend

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    #
    # Indexes cross process boundaries in :mod:`repro.parallel`: the
    # sweep pool pickles the frozen CSR once per worker.  Only the CSR
    # arrays travel -- the backend-private memo caches (`_send_cache`,
    # `_numpy_arrays`) are process-local working state, can be large,
    # and rebuild lazily on first use, so they are dropped on the wire.

    _TRANSIENT_SLOTS = ("_numpy_arrays", "_send_cache")

    def __getstate__(self) -> Dict[str, object]:
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in self._TRANSIENT_SLOTS
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._numpy_arrays = None
        self._send_cache = None

    # ------------------------------------------------------------------

    @classmethod
    def of(cls, graph: Graph) -> "IndexedGraph":
        """The cached index of ``graph`` (built on first use).

        Keyed by graph equality: re-running a sweep over an equal graph
        object reuses the index even across call sites.
        """
        cached = _INDEX_CACHE.get(graph)
        if cached is not None:
            _INDEX_CACHE.move_to_end(graph)
            return cached
        index = cls(graph)
        _INDEX_CACHE[graph] = index
        while len(_INDEX_CACHE) > _INDEX_CACHE_SIZE:
            _INDEX_CACHE.popitem(last=False)
        return index

    # ------------------------------------------------------------------
    # Slot arithmetic
    # ------------------------------------------------------------------

    def _slot_of(self, v: int, u: int) -> int:
        """The slot of directed arc ``v -> u`` (ids); raises if absent."""
        start, stop = self.offsets[v], self.offsets[v + 1]
        j = bisect_left(self.targets, u, start, stop)
        if j == stop or self.targets[j] != u:
            raise ConfigurationError(
                f"no arc between ids {v} and {u} in the indexed graph"
            )
        return j

    def degree(self, v: int) -> int:
        """Degree of node id ``v``."""
        return self.offsets[v + 1] - self.offsets[v]

    def owner_of_slot(self, j: int) -> int:
        """The node id whose adjacency block contains slot ``j``.

        The reverse of slot ``j`` lives in the target's block and points
        back at the owner, so no offset scan is needed.
        """
        return self.targets[self.reverse_slot[j]]

    def arc_slot(self, sender: Node, receiver: Node) -> int:
        """The slot of the labelled directed arc ``sender -> receiver``."""
        try:
            v = self.ids[sender]
            u = self.ids[receiver]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        return self._slot_of(v, u)

    def arc_of_slot(self, j: int) -> Tuple[Node, Node]:
        """The labelled directed arc stored at slot ``j``."""
        return (
            self.labels[self.owner_of_slot(j)],
            self.labels[self.targets[j]],
        )

    # ------------------------------------------------------------------
    # Validation helpers shared by the engines
    # ------------------------------------------------------------------

    def resolve_sources(self, sources: Iterable[Node]) -> List[int]:
        """Validate and dedupe ``sources`` into ids (first-seen order)."""
        resolved: List[int] = []
        seen = set()
        for label in sources:
            node_id = self.ids.get(label)
            if node_id is None:
                raise NodeNotFoundError(label)
            if node_id not in seen:
                seen.add(node_id)
                resolved.append(node_id)
        if not resolved:
            raise ConfigurationError("at least one source is required")
        return resolved

    def __repr__(self) -> str:
        return f"IndexedGraph(n={self.n}, arcs={self.num_arcs})"
