"""Fast flooding backends over a CSR-indexed graph.

The reference simulators in :mod:`repro.core.amnesiac` manipulate sets
of hashable-node tuples, which is exact but caps sweeps at a few
thousand nodes.  This subsystem freezes a
:class:`~repro.graphs.graph.Graph` once into flat integer arrays
(:class:`IndexedGraph`) and runs the directed-edge frontier on one of
two engines:

* the **pure** backend (:mod:`repro.fastpath.pure_backend`) -- per-node
  integer bitmasks, no dependencies, O(messages) per round;
* the **numpy** backend (:mod:`repro.fastpath.numpy_backend`) --
  vectorised boolean arc arrays, O(arcs) per round, used automatically
  when numpy is importable and the graph is large enough
  (:data:`~repro.fastpath.engine.NUMPY_ARC_THRESHOLD` directed arcs);
  everything degrades gracefully to pure when numpy is absent;
* the **oracle** backend (:mod:`repro.fastpath.oracle_backend`) -- no
  frontier at all: one BFS over the implicit double cover predicts the
  full statistics of a flood in O(n + m) total, independent of round
  count.  Never auto-selected; request it with ``backend="oracle"``
  when you want sweep statistics at BFS cost.  Deterministic oracle
  batches of :data:`~repro.fastpath.engine.BITSET_MIN_BATCH` or more
  runs additionally ride the word-packed bitset cover sweep
  (:mod:`repro.fastpath.bitset_oracle`): 64 source sets flood per
  ``uint64`` word pass, bit-identical to the per-source oracle.

Pass ``backend="pure"`` / ``"numpy"`` / ``"oracle"`` to pin an engine,
or ``backend=None`` (the default) to auto-select a frontier engine;
:func:`available_backends` reports what this process can run.  All
backends are exact -- integer/boolean arithmetic only -- and the
equivalence-matrix tests (``tests/core/test_engine_equivalence.py``)
hold them bit-for-bit equal to the reference frontier simulator and the
message-passing engine.

Entry points:

* :func:`simulate_indexed` -- one flood, full statistics
  (:func:`repro.core.amnesiac.simulate` delegates here);
* :func:`sweep` -- many floods over one graph, indexing amortised,
  light statistics (powers ``all_pairs_termination`` and the scaling
  benchmarks); :func:`repro.parallel.parallel_sweep` is its sharded
  multi-core form;
* :func:`step_arc_mask` / :func:`evolve_arc_mask` -- arbitrary initial
  configurations packed into arc bitmasks (powers the
  initial-conditions census);
* :func:`probe_termination_rounds` / :func:`routed_backend` -- cheap
  double-cover rounds probes that make backend selection rounds-aware
  (bare ``sweep(backend=None)`` and the service layer route long
  floods to the oracle through these);
* :class:`VariantSpec` (:func:`thinning` / :func:`bernoulli_loss` /
  :func:`k_memory` / :func:`periodic_injection` / :func:`multi_message`
  / :func:`random_delay` / :func:`dynamic_schedule`) and
  :func:`variant_survey` -- arc-mask steppers for every built-in
  process variant with counter-based per-(run, round) randomness,
  pluggable into ``sweep``/``parallel_sweep``/the service via
  ``variant=`` (:mod:`repro.fastpath.variants`); dynamic topologies
  travel as the arc-diff :class:`ArcSchedule` format
  (:mod:`repro.fastpath.schedule`).
"""

from repro.fastpath.engine import (
    BITSET_MIN_BATCH,
    NUMPY_ARC_THRESHOLD,
    NUMPY_MIN_MEAN_DEGREE,
    ORACLE,
    IndexedRun,
    arc_mask_of,
    available_backends,
    batch_key_of,
    configuration_of_mask,
    dispatch_batch,
    ensure_homogeneous_specs,
    evolve_arc_mask,
    routed_sweep_backend,
    run_spec,
    select_backend,
    simulate_indexed,
    step_arc_mask,
    sweep,
    sweep_specs,
)
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.probe import (
    ORACLE_ROUND_THRESHOLD,
    expected_rounds,
    probe_termination_rounds,
    routed_backend,
)
from repro.fastpath.schedule import ArcSchedule
from repro.fastpath.variants import (
    VariantSpec,
    VariantSummary,
    bernoulli_loss,
    dynamic_schedule,
    k_memory,
    multi_message,
    periodic_injection,
    random_delay,
    thinning,
    variant_backend,
    variant_default_budget,
    variant_survey,
)

__all__ = [
    "BITSET_MIN_BATCH",
    "NUMPY_ARC_THRESHOLD",
    "NUMPY_MIN_MEAN_DEGREE",
    "ORACLE",
    "ORACLE_ROUND_THRESHOLD",
    "ArcSchedule",
    "IndexedGraph",
    "IndexedRun",
    "VariantSpec",
    "VariantSummary",
    "arc_mask_of",
    "available_backends",
    "batch_key_of",
    "bernoulli_loss",
    "configuration_of_mask",
    "dispatch_batch",
    "dynamic_schedule",
    "ensure_homogeneous_specs",
    "evolve_arc_mask",
    "expected_rounds",
    "k_memory",
    "multi_message",
    "periodic_injection",
    "probe_termination_rounds",
    "random_delay",
    "routed_backend",
    "routed_sweep_backend",
    "run_spec",
    "select_backend",
    "simulate_indexed",
    "step_arc_mask",
    "sweep",
    "sweep_specs",
    "thinning",
    "variant_backend",
    "variant_default_budget",
    "variant_survey",
]
