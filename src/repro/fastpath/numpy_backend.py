"""The optional numpy fast backend: vectorised arc-array frontier.

The frontier is a boolean vector ``F`` over all directed arc slots of
the :class:`~repro.fastpath.indexed.IndexedGraph`.  One round is three
vector operations:

* ``H = F[reverse_slot]`` -- ``H[j]`` is true iff the *owner* of slot
  ``j`` heard from ``targets[j]`` (the reverse-slot array is the
  involution that flips every arc);
* ``heard_any[owner[H]] = True`` -- which nodes received anything;
* ``F' = heard_any[owner] & ~H`` -- every receiver re-sends along all
  its slots except those it heard along.

Cost is O(arcs) per round independent of frontier size, which wins on
the dense mid-flood rounds of large graphs and loses to the pure
backend on small or sparse instances -- the dispatcher in
:mod:`repro.fastpath.engine` picks accordingly.

This module imports cleanly when numpy is absent; ``HAS_NUMPY`` gates
every entry point (the container may or may not ship numpy, and the
pure backend is always available).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import RawRun

try:  # pragma: no cover - exercised implicitly by backend selection
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAS_NUMPY = _np is not None


class _ArcArrays:
    """Numpy sidecar of an :class:`IndexedGraph`, built once per index."""

    __slots__ = ("offsets", "targets", "reverse_slot", "owner")

    def __init__(self, index: IndexedGraph) -> None:
        self.offsets = _np.asarray(index.offsets, dtype=_np.int64)
        self.targets = _np.asarray(index.targets, dtype=_np.int64)
        self.reverse_slot = _np.asarray(index.reverse_slot, dtype=_np.int64)
        degrees = self.offsets[1:] - self.offsets[:-1]
        self.owner = _np.repeat(_np.arange(index.n, dtype=_np.int64), degrees)


def _arrays(index: IndexedGraph) -> _ArcArrays:
    cached = index._numpy_arrays
    if cached is None:
        cached = _ArcArrays(index)
        index._numpy_arrays = cached
    return cached


def run(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    collect_senders: bool = True,
    collect_receives: bool = True,
) -> RawRun:
    """Run amnesiac flooding from ``source_ids`` under a round budget.

    Exact integer semantics identical to the pure backend (booleans and
    index arithmetic only -- no floating point touches the result).
    """
    if _np is None:  # pragma: no cover - guarded by the dispatcher
        raise RuntimeError("numpy backend requested but numpy is not importable")
    arrays = _arrays(index)
    owner = arrays.owner
    reverse_slot = arrays.reverse_slot
    offsets = index.offsets
    n = index.n

    frontier = _np.zeros(index.num_arcs, dtype=bool)
    for source in source_ids:
        frontier[offsets[source] : offsets[source + 1]] = True

    round_counts: List[int] = []
    sender_rounds: Optional[List[List[int]]] = [] if collect_senders else None
    receives: Optional[List[List[int]]] = (
        [[] for _ in range(n)] if collect_receives else None
    )
    total = 0
    terminated = True
    round_number = 1

    while frontier.any():
        if round_number > budget:
            terminated = False
            break
        count = int(frontier.sum())
        round_counts.append(count)
        total += count
        if sender_rounds is not None:
            senders = _np.zeros(n, dtype=bool)
            senders[owner[frontier]] = True
            sender_rounds.append(_np.flatnonzero(senders).tolist())
        heard = frontier[reverse_slot]
        heard_any = _np.zeros(n, dtype=bool)
        heard_any[owner[heard]] = True
        if receives is not None:
            for receiver in _np.flatnonzero(heard_any).tolist():
                receives[receiver].append(round_number)
        frontier = heard_any[owner] & ~heard
        round_number += 1

    return terminated, round_counts, total, sender_rounds, receives
