"""The oracle backend: flooding statistics from the double cover, no flooding.

The authors' full version proves that amnesiac flooding on ``G`` from a
source set ``I`` is step-for-step equivalent to BFS on the bipartite
double cover ``G x K2`` from ``{(v, 0) : v in I}`` (see
:mod:`repro.graphs.double_cover`, which implements the correspondence
on the explicit cover graph and serves as this backend's independent
cross-check).  That equivalence pins down *every* statistic the
frontier engines report, in one O(n + m) BFS pass:

* node ``u`` receives exactly at the finite cover distances
  ``dist((u, 0))``, ``dist((u, 1))`` that are ``>= 1``;
* every cover edge carries exactly one directed message, at round
  ``max`` of its endpoint distances (the cover is bipartite, so the two
  endpoints of an edge always sit on adjacent BFS levels), travelling
  from the lower level to the higher -- which yields the per-round
  directed-message counts and the per-round sender sets;
* the process terminates after round ``max(dist)``.

This backend therefore emits a :data:`~repro.fastpath.pure_backend.RawRun`
bit-for-bit identical to the frontier engines -- including budget
cut-off truncation -- without ever materialising a frontier.  Cost is
O(n + m) *total*, independent of the number of rounds.  Two honest
notes on where that wins (the benchmark rows record both sides):

* against the vectorised numpy engine -- O(arcs) *per round* -- the
  oracle wins by an order of magnitude on round-heavy families (odd
  cycles run n rounds) and loses small constants on low-diameter
  expanders where floods last a handful of rounds;
* the pure engine is also effectively linear per run (the cover
  correspondence implies every flood sends at most one message per
  cover edge, so its total work is O(n + m + rounds) with small
  constants), and stays within ~2x of the oracle everywhere measured.

What the oracle uniquely adds is *robustness without topology
knowledge* -- it is never the catastrophic choice the per-round
engines can be on the wrong family -- plus a second, shared-nothing
implementation of every statistic, strong enough to sit inside the
equivalence matrix.

The BFS runs on the *implicit* cover: state ``2 * v + parity`` over the
CSR arrays of the :class:`~repro.fastpath.indexed.IndexedGraph`, so no
cover graph object is ever built and the index is shared with the
frontier backends (and with :mod:`repro.parallel` workers).

The one thing the oracle cannot do is arbitrary initial conditions
(:func:`~repro.fastpath.engine.step_arc_mask` configurations): the
cover correspondence holds for source-style starts only, which is
exactly the shape :func:`~repro.fastpath.engine.sweep` dispatches.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import RawRun


def cover_levels(index: IndexedGraph, source_ids: Sequence[int]) -> List[int]:
    """BFS levels of the implicit double cover, ``-1`` for unreachable.

    State ``2 * v + parity`` encodes cover node ``(v, parity)``; the
    search starts from ``{2 * s : s in source_ids}`` (parity 0) and
    flips parity across every arc.
    """
    offsets = index.offsets
    targets = index.targets
    dist = [-1] * (2 * index.n)
    frontier = []
    for source in source_ids:
        state = 2 * source
        if dist[state] < 0:
            dist[state] = 0
            frontier.append(state)
    # Level-synchronous BFS: the whole frontier shares one distance, so
    # no per-state distance reads and the queue is two plain lists.
    d = 0
    while frontier:
        d += 1
        next_frontier = []
        push = next_frontier.append
        for state in frontier:
            v = state >> 1
            next_parity = 1 - (state & 1)
            for w in targets[offsets[v] : offsets[v + 1]]:
                nxt = 2 * w + next_parity
                if dist[nxt] < 0:
                    dist[nxt] = d
                    push(nxt)
        frontier = next_frontier
    return dist


def run(
    index: IndexedGraph,
    source_ids: Sequence[int],
    budget: int,
    collect_senders: bool = True,
    collect_receives: bool = True,
) -> RawRun:
    """Predict a flood from ``source_ids`` under a round budget.

    Same contract as the frontier backends: statistics cover rounds
    ``1 .. min(T, budget)`` and the run is flagged non-terminated iff
    round ``budget + 1`` would still send.
    """
    dist = cover_levels(index, source_ids)
    return stats_from_levels(
        index,
        dist,
        budget,
        collect_senders=collect_senders,
        collect_receives=collect_receives,
    )


def stats_from_levels(
    index: IndexedGraph,
    dist: Sequence[int],
    budget: int,
    collect_senders: bool = True,
    collect_receives: bool = True,
) -> RawRun:
    """Turn one run's cover levels into its :data:`RawRun` statistics.

    ``dist`` is a :func:`cover_levels` vector (length ``2 * n``, ``-1``
    for unreachable cover states).  Split out of :func:`run` so the
    word-packed batch oracle (:mod:`repro.fastpath.bitset_oracle`) can
    feed its per-run level columns through *exactly* the per-source
    statistics code -- one implementation of the edge-crossing
    enumeration, so the two paths cannot drift.
    """
    horizon = max(dist)  # the true termination round T (0 if no arcs)
    terminated = horizon <= budget
    executed = horizon if terminated else budget

    offsets = index.offsets
    targets = index.targets
    round_counts = [0] * executed
    sender_sets: Optional[List[set]] = (
        [set() for _ in range(executed)] if collect_senders else None
    )
    # Each undirected cover edge {(v, p), (w, 1-p)} carries one message;
    # enumerating slots with v < w visits every cover edge exactly once
    # per parity.  Budget truncation just skips rounds past `executed`.
    for v in range(index.n):
        dv0 = dist[2 * v]
        dv1 = dist[2 * v + 1]
        for w in targets[offsets[v] : offsets[v + 1]]:
            if w < v:
                continue
            w2 = 2 * w
            for dv, dw in ((dv0, dist[w2 + 1]), (dv1, dist[w2])):
                if dv < 0 or dw < 0:
                    continue
                crossing = dv if dv > dw else dw
                if crossing > executed:
                    continue
                round_counts[crossing - 1] += 1
                if sender_sets is not None:
                    sender_sets[crossing - 1].add(v if dv < dw else w)

    sender_rounds: Optional[List[List[int]]] = None
    if sender_sets is not None:
        sender_rounds = [sorted(senders) for senders in sender_sets]

    receives: Optional[List[List[int]]] = None
    if collect_receives:
        receives = [
            sorted(
                d
                for d in (dist[2 * v], dist[2 * v + 1])
                if 1 <= d <= executed
            )
            for v in range(index.n)
        ]

    return terminated, round_counts, sum(round_counts), sender_rounds, receives
