"""Analysis layer: metrics, bound sweeps, detection and verification.

* :mod:`~repro.analysis.metrics` -- per-run metric bundles.
* :mod:`~repro.analysis.bounds` -- claim sweeps (Lemma 2.1 through
  Theorem 3.3) over graph suites.
* :mod:`~repro.analysis.bipartite_detect` -- the paper's proposed
  topology-detection application.
* :mod:`~repro.analysis.statistics` -- small dependency-free stats.
* :mod:`~repro.analysis.verify` -- cross-validation of simulator,
  engine and double-cover oracle.
"""

from repro.analysis.bipartite_detect import (
    DetectionResult,
    detect_at_source,
    detect_by_receipt_counts,
    detect_by_termination_time,
    odd_girth_estimate_from_echo,
    odd_girth_via_flooding,
)
from repro.analysis.bounds import (
    BoundEvidence,
    check_corollary_2_2,
    check_lemma_2_1,
    check_theorem_3_1,
    check_theorem_3_3,
    evidence_summary,
)
from repro.analysis.metrics import (
    FloodMetrics,
    flood_metrics,
    metrics_for_all_sources,
    round_profile,
    worst_case_rounds,
)
from repro.analysis.statistics import (
    SampleSummary,
    histogram,
    histogram_bar_chart,
    quantile,
    ratio_series,
    summarize,
)
from repro.analysis.wavefront import (
    LoadSummary,
    last_receivers,
    WaveDecomposition,
    frontier_profile,
    load_summary,
    predicted_round_sets,
    verify_round_sets_against_simulation,
    wave_decomposition,
)
from repro.analysis.verify import (
    VerificationReport,
    check_engine_against_simulator,
    check_run_against_oracle,
    check_theorem_structure,
    full_cross_check,
)

__all__ = [
    "DetectionResult",
    "detect_at_source",
    "detect_by_receipt_counts",
    "detect_by_termination_time",
    "odd_girth_estimate_from_echo",
    "odd_girth_via_flooding",
    "BoundEvidence",
    "check_corollary_2_2",
    "check_lemma_2_1",
    "check_theorem_3_1",
    "check_theorem_3_3",
    "evidence_summary",
    "FloodMetrics",
    "flood_metrics",
    "metrics_for_all_sources",
    "round_profile",
    "worst_case_rounds",
    "SampleSummary",
    "histogram",
    "histogram_bar_chart",
    "quantile",
    "ratio_series",
    "summarize",
    "LoadSummary",
    "last_receivers",
    "WaveDecomposition",
    "frontier_profile",
    "load_summary",
    "predicted_round_sets",
    "verify_round_sets_against_simulation",
    "wave_decomposition",
    "VerificationReport",
    "check_engine_against_simulator",
    "check_run_against_oracle",
    "check_theorem_structure",
    "full_cross_check",
]
