"""Trace and run metrics shared by experiments and reports.

A thin, well-typed layer over :class:`~repro.core.amnesiac.FloodingRun`
and :class:`~repro.sync.trace.ExecutionTrace` that computes the
quantities the paper reasons about: termination round, receive
multiplicities, per-round activity and how the run sits relative to the
graph's eccentricity/diameter structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_bipartite, is_connected
from repro.graphs.traversal import diameter, eccentricity
from repro.core.amnesiac import FloodingRun, simulate
from repro.sync.trace import ExecutionTrace

Run = Union[FloodingRun, ExecutionTrace]


def run_rounds(run: Run) -> int:
    """Termination round of either run representation."""
    return run.termination_round


def run_messages(run: Run) -> int:
    """Total messages of either run representation."""
    if isinstance(run, FloodingRun):
        return run.total_messages
    return run.total_messages()


def run_receive_rounds(run: Run) -> Dict[Node, Tuple[int, ...]]:
    """Per-node receive rounds of either run representation."""
    if isinstance(run, FloodingRun):
        return run.receive_rounds
    return run.receive_rounds()


@dataclass(frozen=True)
class FloodMetrics:
    """The metric bundle for one (graph, source) amnesiac flood.

    Attributes mirror the paper's quantities:

    * ``rounds`` -- termination round;
    * ``eccentricity`` -- ``e(source)``, the bipartite exact value and
      the universal lower bound;
    * ``diameter`` -- ``D`` (``None`` when the graph is disconnected);
    * ``slack_vs_diameter`` -- ``rounds - D``: <= 0 for bipartite
      sources (Corollary 2.2), in ``[1 - D, D + 1]`` for non-bipartite
      (Theorem 3.3 upper bound ``2D + 1``);
    * ``max_receipts`` -- 1 on bipartite components, 2 otherwise;
    * ``coverage`` -- fraction of the source's component reached.
    """

    source: Node
    rounds: int
    messages: int
    eccentricity: int
    diameter: Optional[int]
    bipartite: bool
    max_receipts: int
    coverage: float

    @property
    def slack_vs_diameter(self) -> Optional[int]:
        if self.diameter is None:
            return None
        return self.rounds - self.diameter

    @property
    def slack_vs_eccentricity(self) -> int:
        return self.rounds - self.eccentricity


def flood_metrics(graph: Graph, source: Node) -> FloodMetrics:
    """Simulate AF from ``source`` and compute the metric bundle."""
    from repro.graphs.traversal import bfs_distances

    run = simulate(graph, [source])
    component = set(bfs_distances(graph, source))
    counts = run.receive_counts()
    reached = run.nodes_reached()
    return FloodMetrics(
        source=source,
        rounds=run.termination_round,
        messages=run.total_messages,
        eccentricity=eccentricity(graph, source),
        diameter=diameter(graph) if is_connected(graph) else None,
        bipartite=is_bipartite(graph),
        max_receipts=max(counts.values()) if counts else 0,
        coverage=len(reached & component) / len(component) if component else 1.0,
    )


def metrics_for_all_sources(graph: Graph) -> List[FloodMetrics]:
    """Flood metrics from every node of the graph (deterministic order)."""
    return [flood_metrics(graph, source) for source in graph.nodes()]


def worst_case_rounds(graph: Graph) -> int:
    """The maximum termination round over all sources."""
    return max(m.rounds for m in metrics_for_all_sources(graph))


def round_profile(graph: Graph) -> Dict[Node, int]:
    """Termination round per source -- the per-node landscape used by FIG3."""
    return {
        source: simulate(graph, [source]).termination_round
        for source in graph.nodes()
    }
