"""Spectral cross-validation of the bipartiteness dichotomy.

A third, entirely different road to the property that governs amnesiac
flooding's behaviour: a connected graph is bipartite iff the spectrum
of its adjacency matrix is symmetric about zero (equivalently, iff
``-lambda_max`` is an eigenvalue).  This gives the test suite an
algebraic validator, independent from both the BFS 2-colouring and the
flooding-based detectors.

numpy is used here (and only here in the analysis layer); the module
degrades gracefully if numpy is unavailable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_connected

_TOLERANCE = 1e-8


def adjacency_matrix(graph: Graph) -> Tuple["object", List[Node]]:
    """The dense adjacency matrix and its node ordering."""
    import numpy as np

    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    matrix = np.zeros((len(nodes), len(nodes)))
    for u, v in graph.edges():
        matrix[index[u], index[v]] = 1.0
        matrix[index[v], index[u]] = 1.0
    return matrix, nodes


def adjacency_spectrum(graph: Graph) -> List[float]:
    """Eigenvalues of the adjacency matrix, descending."""
    import numpy as np

    if graph.num_nodes == 0:
        return []
    matrix, _ = adjacency_matrix(graph)
    eigenvalues = np.linalg.eigvalsh(matrix)
    return sorted((float(v) for v in eigenvalues), reverse=True)


def spectral_is_bipartite(graph: Graph, tolerance: float = _TOLERANCE) -> bool:
    """Bipartiteness by spectral symmetry (connected graphs only).

    For a connected graph: bipartite iff ``lambda_min == -lambda_max``.
    Raises :class:`DisconnectedGraphError` otherwise, because the
    criterion is per-component.
    """
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "the spectral criterion applies per connected component"
        )
    if graph.num_edges == 0:
        return True
    spectrum = adjacency_spectrum(graph)
    return abs(spectrum[0] + spectrum[-1]) <= tolerance * max(1.0, spectrum[0])


def spectral_gap(graph: Graph) -> Optional[float]:
    """``lambda_1 - lambda_2`` of the adjacency spectrum.

    A crude expansion proxy: bigger gaps mean faster mixing, which for
    flooding shows up as smaller diameters and shorter runs.  ``None``
    for graphs with fewer than two nodes.
    """
    spectrum = adjacency_spectrum(graph)
    if len(spectrum) < 2:
        return None
    return spectrum[0] - spectrum[1]


def spectral_report(graph: Graph) -> Dict[str, object]:
    """Bundle of spectral facts used by reports and tests."""
    spectrum = adjacency_spectrum(graph)
    report: Dict[str, object] = {
        "nodes": graph.num_nodes,
        "lambda_max": spectrum[0] if spectrum else None,
        "lambda_min": spectrum[-1] if spectrum else None,
        "gap": spectral_gap(graph),
    }
    if is_connected(graph):
        report["bipartite_spectral"] = spectral_is_bipartite(graph)
    return report
