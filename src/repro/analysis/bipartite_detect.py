"""Bipartiteness detection via amnesiac flooding -- the paper's application.

The introduction proposes using AF "in topology detection (e.g. to
detect/test non-bipartiteness of graphs)".  The signal is sharp:

* on a connected **bipartite** graph, every non-source node receives
  the message exactly once and the process stops by round ``e(source)``
  (hence by ``D``);
* on a connected **non-bipartite** graph, every node eventually
  receives the message **twice** (the double cover is connected), and
  the process runs past the source's eccentricity.

Three detectors of increasing locality are provided, all reducing to
one amnesiac flood:

1. :func:`detect_by_receipt_counts` -- global observer sees receive
   multiplicities (any node receiving twice => non-bipartite);
2. :func:`detect_by_termination_time` -- observer sees only the
   termination round and compares it with ``e(source)``;
3. :func:`detect_at_source` -- fully distributed flavour: the *source
   itself* decides, using only whether the message ever came back to it
   (it does iff the component is non-bipartite).

All three are proven equivalent on connected graphs by the property
tests, and each is validated against the structural 2-colouring check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_bipartite, is_connected
from repro.graphs.traversal import eccentricity
from repro.core.amnesiac import simulate


@dataclass(frozen=True)
class DetectionResult:
    """Verdict of one flooding-based bipartiteness probe.

    ``bipartite`` is the detector's claim; ``ground_truth`` the
    structural answer (2-colouring); ``correct`` their agreement.
    ``rounds``/``evidence`` describe what the detector saw.
    """

    method: str
    bipartite: bool
    ground_truth: bool
    rounds: int
    evidence: str

    @property
    def correct(self) -> bool:
        return self.bipartite == self.ground_truth


def _require_connected(graph: Graph) -> None:
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "flooding-based detection probes the source's component; "
            "run it per component on disconnected graphs"
        )


def detect_by_receipt_counts(graph: Graph, source: Node) -> DetectionResult:
    """Non-bipartite iff some node receives the message more than once."""
    _require_connected(graph)
    run = simulate(graph, [source])
    max_receipts = max(run.receive_counts().values(), default=0)
    return DetectionResult(
        method="receipt-counts",
        bipartite=max_receipts <= 1,
        ground_truth=is_bipartite(graph),
        rounds=run.termination_round,
        evidence=f"max receipts observed: {max_receipts}",
    )


def detect_by_termination_time(graph: Graph, source: Node) -> DetectionResult:
    """Non-bipartite iff the flood outlives the source's eccentricity.

    Uses Lemma 2.1's exactness: bipartite => rounds == e(source); the
    converse holds because a non-bipartite component's second wave
    always extends the run past ``e(source)``.
    """
    _require_connected(graph)
    run = simulate(graph, [source])
    ecc = eccentricity(graph, source)
    return DetectionResult(
        method="termination-time",
        bipartite=run.termination_round == ecc,
        ground_truth=is_bipartite(graph),
        rounds=run.termination_round,
        evidence=f"rounds {run.termination_round} vs e(source) {ecc}",
    )


def detect_at_source(graph: Graph, source: Node) -> DetectionResult:
    """The source decides alone: did the message ever come back to it?

    On a bipartite component the source never receives the message (its
    double-cover twin ``(source, 1)`` is unreachable); on a
    non-bipartite component the echo always returns.  This makes the
    detector genuinely local -- no global observer needed.
    """
    _require_connected(graph)
    run = simulate(graph, [source])
    echoes = len(run.receive_rounds[source])
    return DetectionResult(
        method="source-echo",
        bipartite=echoes == 0,
        ground_truth=is_bipartite(graph),
        rounds=run.termination_round,
        evidence=f"message returned to source {echoes} time(s)",
    )


def odd_girth_estimate_from_echo(graph: Graph, source: Node) -> Optional[int]:
    """Upper bound on the odd girth from the source's first echo round.

    The message returns to the source at round ``d((source,0),
    (source,1))`` of the double cover, which is the length of the
    shortest odd closed walk through the source; minimising over
    sources gives the odd girth exactly.  Returns ``None`` when no echo
    occurs (bipartite component).
    """
    _require_connected(graph)
    run = simulate(graph, [source])
    echo_rounds = run.receive_rounds[source]
    return echo_rounds[0] if echo_rounds else None


def odd_girth_via_flooding(graph: Graph) -> Optional[int]:
    """Exact odd girth by flooding from every node (``None`` if bipartite).

    Cross-validated against the BFS-based
    :func:`repro.graphs.properties.odd_girth` in the tests -- two more
    independent computations agreeing on a non-trivial invariant.
    """
    _require_connected(graph)
    estimates = [
        odd_girth_estimate_from_echo(graph, source) for source in graph.nodes()
    ]
    finite = [e for e in estimates if e is not None]
    return min(finite) if finite else None
