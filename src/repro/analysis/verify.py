"""Cross-validation of simulator, engine and oracle.

Three independent computations of the same process exist in this
package:

1. the fast frontier simulator (:func:`repro.core.amnesiac.simulate`),
2. the message-passing engine run of
   :class:`~repro.core.amnesiac.AmnesiacFlooding`,
3. the double-cover oracle (:func:`repro.core.oracle.predict`).

This module checks them against each other on any given instance and
reports the first discrepancy in detail.  The property-based tests
drive these checks over thousands of random graphs; the experiment
harness runs them once per figure as a sanity gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List

from repro.graphs.graph import Graph, Node
from repro.core.amnesiac import flood_trace, simulate
from repro.core.oracle import predict
from repro.core.roundsets import analyze_run


@dataclass
class VerificationReport:
    """Outcome of cross-validating one (graph, sources) instance.

    ``ok`` is True when every check passed; ``failures`` lists
    human-readable descriptions of each mismatch.
    """

    graph: Graph
    sources: tuple
    ok: bool = True
    failures: List[str] = field(default_factory=list)

    def _fail(self, message: str) -> None:
        self.ok = False
        self.failures.append(message)


def check_run_against_oracle(
    graph: Graph, sources: Iterable[Node]
) -> VerificationReport:
    """Fast simulator vs double-cover oracle: rounds, receipts, messages."""
    source_list = list(sources)
    report = VerificationReport(graph=graph, sources=tuple(source_list))
    run = simulate(graph, source_list)
    prediction = predict(graph, source_list)

    if not run.terminated:
        report._fail("simulation did not terminate within budget")
        return report
    if run.termination_round != prediction.termination_round:
        report._fail(
            f"termination round: simulated {run.termination_round}, "
            f"oracle {prediction.termination_round}"
        )
    if run.total_messages != prediction.total_messages:
        report._fail(
            f"messages: simulated {run.total_messages}, "
            f"oracle {prediction.total_messages}"
        )
    if run.receive_rounds != prediction.receive_rounds:
        diffs = [
            f"{node!r}: sim {run.receive_rounds[node]} vs "
            f"oracle {prediction.receive_rounds[node]}"
            for node in graph.nodes()
            if run.receive_rounds[node] != prediction.receive_rounds[node]
        ]
        report._fail("receive rounds differ: " + "; ".join(diffs[:5]))
    return report


def check_engine_against_simulator(
    graph: Graph, sources: Iterable[Node]
) -> VerificationReport:
    """Message-passing engine vs fast simulator: full per-round agreement."""
    source_list = list(sources)
    report = VerificationReport(graph=graph, sources=tuple(source_list))
    run = simulate(graph, source_list)
    trace = flood_trace(graph, source_list)

    if trace.termination_round != run.termination_round:
        report._fail(
            f"rounds: engine {trace.termination_round}, "
            f"simulator {run.termination_round}"
        )
    if trace.total_messages() != run.total_messages:
        report._fail(
            f"messages: engine {trace.total_messages()}, "
            f"simulator {run.total_messages}"
        )
    if trace.receive_rounds() != run.receive_rounds:
        report._fail("per-node receive rounds differ between engine and simulator")
    for round_number in range(1, run.termination_round + 1):
        engine_senders = trace.senders_in_round(round_number)
        sim_senders = (
            set(run.sender_sets[round_number - 1])
            if round_number - 1 < len(run.sender_sets)
            else set()
        )
        if engine_senders != sim_senders:
            report._fail(
                f"round {round_number} senders: engine {sorted(engine_senders, key=repr)}, "
                f"simulator {sorted(sim_senders, key=repr)}"
            )
            break
    return report


def check_theorem_structure(graph: Graph, sources: Iterable[Node]) -> VerificationReport:
    """Round-set structure of Theorem 3.1 on a fresh run."""
    source_list = list(sources)
    report = VerificationReport(graph=graph, sources=tuple(source_list))
    run = simulate(graph, source_list)
    if not run.terminated:
        report._fail("simulation did not terminate within budget")
        return report
    structure = analyze_run(run)
    if not structure.satisfies_theorem:
        report._fail(
            f"round-set structure violated: even recurrences "
            f"{structure.even_recurrence_count}, max appearances "
            f"{structure.max_appearances}, parity consistent "
            f"{structure.parity_consistent}"
        )
    return report


def full_cross_check(graph: Graph, sources: Iterable[Node]) -> VerificationReport:
    """All three pairwise checks; aggregates every failure found."""
    source_list = list(sources)
    combined = VerificationReport(graph=graph, sources=tuple(source_list))
    for check in (
        check_run_against_oracle,
        check_engine_against_simulator,
        check_theorem_structure,
    ):
        result = check(graph, source_list)
        if not result.ok:
            combined.ok = False
            combined.failures.extend(
                f"{check.__name__}: {failure}" for failure in result.failures
            )
    return combined
