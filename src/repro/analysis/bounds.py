"""Bound-checking sweeps: the claim experiments' computational core.

Each function sweeps a claim of the paper over a suite of (graph,
source) instances and returns structured evidence rows.  The claim
benchmarks and ``repro.experiments.claims`` print these rows; the test
suite asserts every row passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_bipartite, is_connected
from repro.graphs.traversal import diameter, eccentricity
from repro.core.amnesiac import simulate


@dataclass(frozen=True)
class BoundEvidence:
    """One (graph, source) data point of a claim sweep.

    ``holds`` is the verdict for the claim under test; the remaining
    fields let reports display *why*.
    """

    label: str
    source: Node
    rounds: int
    eccentricity: int
    diameter: int
    bipartite: bool
    holds: bool


def _checked_instances(
    suite: Iterable[Tuple[str, Graph]],
    sources_per_graph: Optional[int],
) -> Iterable[Tuple[str, Graph, Node]]:
    for label, graph in suite:
        if not is_connected(graph) or graph.num_nodes == 0:
            continue
        nodes = graph.nodes()
        chosen = nodes if sources_per_graph is None else nodes[:sources_per_graph]
        for source in chosen:
            yield label, graph, source


def check_lemma_2_1(
    suite: Iterable[Tuple[str, Graph]],
    sources_per_graph: Optional[int] = None,
) -> List[BoundEvidence]:
    """Lemma 2.1: on connected bipartite graphs, rounds == e(source).

    Also enforces the lemma's mechanism: every node receives exactly
    once (parallel BFS).  Non-bipartite graphs in the suite are
    skipped -- the lemma does not speak about them.
    """
    evidence: List[BoundEvidence] = []
    for label, graph, source in _checked_instances(suite, sources_per_graph):
        if not is_bipartite(graph):
            continue
        run = simulate(graph, [source])
        ecc = eccentricity(graph, source)
        counts = run.receive_counts()
        non_source_once = all(
            counts[node] == 1 for node in graph.nodes() if node != source
        )
        holds = (
            run.terminated
            and run.termination_round == ecc
            and non_source_once
            and counts[source] == 0
        )
        evidence.append(
            BoundEvidence(
                label=label,
                source=source,
                rounds=run.termination_round,
                eccentricity=ecc,
                diameter=diameter(graph),
                bipartite=True,
                holds=holds,
            )
        )
    return evidence


def check_corollary_2_2(
    suite: Iterable[Tuple[str, Graph]],
    sources_per_graph: Optional[int] = None,
) -> List[BoundEvidence]:
    """Corollary 2.2: on connected bipartite graphs, rounds <= D."""
    evidence: List[BoundEvidence] = []
    for label, graph, source in _checked_instances(suite, sources_per_graph):
        if not is_bipartite(graph):
            continue
        run = simulate(graph, [source])
        d = diameter(graph)
        evidence.append(
            BoundEvidence(
                label=label,
                source=source,
                rounds=run.termination_round,
                eccentricity=eccentricity(graph, source),
                diameter=d,
                bipartite=True,
                holds=run.terminated and run.termination_round <= d,
            )
        )
    return evidence


def check_theorem_3_1(
    suite: Iterable[Tuple[str, Graph]],
    sources_per_graph: Optional[int] = None,
) -> List[BoundEvidence]:
    """Theorem 3.1: AF terminates on every graph, from every source."""
    evidence: List[BoundEvidence] = []
    for label, graph, source in _checked_instances(suite, sources_per_graph):
        run = simulate(graph, [source])
        evidence.append(
            BoundEvidence(
                label=label,
                source=source,
                rounds=run.termination_round,
                eccentricity=eccentricity(graph, source),
                diameter=diameter(graph),
                bipartite=is_bipartite(graph),
                holds=run.terminated,
            )
        )
    return evidence


def check_theorem_3_3(
    suite: Iterable[Tuple[str, Graph]],
    sources_per_graph: Optional[int] = None,
) -> List[BoundEvidence]:
    """Theorem 3.3: on connected non-bipartite graphs, rounds <= 2D + 1.

    The full paper also notes the non-bipartite time exceeds D for some
    executions; the sweep records rounds so reports can show where in
    ``(e(source), 2D + 1]`` each instance lands, but `holds` asserts
    only the upper bound together with the universal lower bound
    ``rounds >= e(source)``.
    """
    evidence: List[BoundEvidence] = []
    for label, graph, source in _checked_instances(suite, sources_per_graph):
        if is_bipartite(graph):
            continue
        run = simulate(graph, [source])
        d = diameter(graph)
        ecc = eccentricity(graph, source)
        holds = (
            run.terminated
            and ecc <= run.termination_round <= 2 * d + 1
        )
        evidence.append(
            BoundEvidence(
                label=label,
                source=source,
                rounds=run.termination_round,
                eccentricity=ecc,
                diameter=d,
                bipartite=False,
                holds=holds,
            )
        )
    return evidence


def evidence_summary(evidence: Sequence[BoundEvidence]) -> str:
    """One-line pass/fail summary for report output."""
    if not evidence:
        return "no applicable instances"
    passing = sum(1 for e in evidence if e.holds)
    worst = max(evidence, key=lambda e: e.rounds)
    return (
        f"{passing}/{len(evidence)} instances hold; "
        f"max rounds {worst.rounds} (graph {worst.label!r}, "
        f"e={worst.eccentricity}, D={worst.diameter})"
    )
