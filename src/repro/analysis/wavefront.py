"""Wavefront analysis: the two-wave anatomy of amnesiac flooding.

On a bipartite graph AF is one BFS wave.  On a non-bipartite graph the
double cover says there are exactly **two** waves through every node:

* the *primary* wave arrives at round ``d(v, u)`` (the BFS distance);
* the *echo* wave arrives at round ``d_cover((v,0), (u, 1 - d(v,u) % 2))``
  -- the shortest walk of the opposite parity, created where the flood
  crosses an odd cycle.

This module computes the decomposition, the exact per-round receiver
sets predicted by the cover (a per-round sharpening of the oracle), and
frontier-size profiles (how many edges carry ``M`` in each round -- the
network-load curve a deployment would care about).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.fastpath import simulate_indexed
from repro.graphs.double_cover import cover_distances
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import bfs_distances
from repro.core.amnesiac import simulate


@dataclass(frozen=True)
class WaveDecomposition:
    """Per-node arrival rounds of the primary and echo waves.

    ``primary[u]`` is the BFS arrival (round ``d(source, u)``;
    the source itself maps to 0).  ``echo[u]`` is the second arrival or
    ``None`` when no echo reaches ``u`` (bipartite component).
    ``odd_core_distance`` is the earliest echo round minus one -- how
    long the flood runs before the first odd cycle reflects it.
    """

    source: Node
    primary: Dict[Node, int]
    echo: Dict[Node, Optional[int]]

    @property
    def has_echo(self) -> bool:
        return any(value is not None for value in self.echo.values())

    @property
    def first_echo_round(self) -> Optional[int]:
        rounds = [value for value in self.echo.values() if value is not None]
        return min(rounds) if rounds else None

    def echo_lag(self) -> Dict[Node, Optional[int]]:
        """Per node: rounds between primary and echo arrivals."""
        return {
            node: (self.echo[node] - self.primary[node])
            if self.echo[node] is not None
            else None
            for node in self.primary
        }


def wave_decomposition(graph: Graph, source: Node) -> WaveDecomposition:
    """Split every node's receive rounds into primary wave and echo."""
    distances = bfs_distances(graph, source)
    cover = cover_distances(graph, [source])
    primary: Dict[Node, int] = {}
    echo: Dict[Node, Optional[int]] = {}
    for node, distance in distances.items():
        primary[node] = distance
        other_parity = 1 - distance % 2
        echo[node] = cover.get((node, other_parity))
    return WaveDecomposition(source=source, primary=primary, echo=echo)


def predicted_round_sets(graph: Graph, sources: List[Node]) -> List[Set[Node]]:
    """The exact receiver sets ``R_1, ..., R_T`` from the double cover.

    ``R_i = { u : d_cover(S, (u, i mod 2)) == i }`` -- a per-round
    sharpening of the termination oracle, verified against simulation in
    the property tests.
    """
    cover = cover_distances(graph, sources)
    if not cover:
        return []
    horizon = max(cover.values())
    round_sets: List[Set[Node]] = []
    for round_number in range(1, horizon + 1):
        members = {
            node
            for node in graph.nodes()
            if cover.get((node, round_number % 2)) == round_number
        }
        round_sets.append(members)
    return round_sets


def frontier_profile(graph: Graph, source: Node) -> List[int]:
    """Edges carrying ``M`` per round -- the network load curve.

    Bipartite graphs show a single BFS bulge; non-bipartite graphs a
    second bulge as the echo wave plays out.  Collected on the fast
    path with only per-round counters -- no per-node bookkeeping -- so
    profiling large graphs costs O(messages) flat.
    """
    run = simulate_indexed(
        graph, [source], collect_senders=False, collect_receives=False
    )
    return list(run.round_edge_counts)


@dataclass(frozen=True)
class LoadSummary:
    """Peak and total network load of one flood."""

    peak_edges_per_round: int
    peak_round: int
    total_messages: int
    rounds: int

    @property
    def mean_edges_per_round(self) -> float:
        return self.total_messages / self.rounds if self.rounds else 0.0


def load_summary(graph: Graph, source: Node) -> LoadSummary:
    """Summarise the load curve of one flood."""
    profile = frontier_profile(graph, source)
    if not profile:
        return LoadSummary(0, 0, 0, 0)
    peak = max(profile)
    return LoadSummary(
        peak_edges_per_round=peak,
        peak_round=profile.index(peak) + 1,
        total_messages=sum(profile),
        rounds=len(profile),
    )


def last_receivers(graph: Graph, source: Node) -> Tuple[Set[Node], int]:
    """Where the flood dies: the final round's receivers and that round.

    On a connected bipartite graph these are the nodes farthest from
    the source (the BFS periphery relative to ``source``); on a
    non-bipartite graph they are the nodes whose *echo* arrives last --
    often near the source itself, because the second wave travels back.
    Returns ``(nodes, round)``; an isolated source yields
    ``(set(), 0)``.
    """
    cover = cover_distances(graph, [source])
    finite = {key: value for key, value in cover.items() if value >= 1}
    if not finite:
        return set(), 0
    final_round = max(finite.values())
    nodes = {node for (node, _), value in finite.items() if value == final_round}
    return nodes, final_round


def verify_round_sets_against_simulation(graph: Graph, source: Node) -> bool:
    """Check the per-round cover prediction against a real run."""
    run = simulate(graph, [source])
    predicted = predicted_round_sets(graph, [source])
    simulated = [
        {
            node
            for node, rounds in run.receive_rounds.items()
            if round_number in rounds
        }
        for round_number in range(1, run.termination_round + 1)
    ]
    return predicted == simulated
