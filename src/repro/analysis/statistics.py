"""Descriptive statistics over flooding measurements.

Dependency-free summaries (mean/median/stdev/quantiles/histograms) used
by the survey experiments: termination-time distributions across
sources, seeds and graph families.  Kept deliberately simple -- the
quantities are small integer samples, not big data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SampleSummary:
    """Five-number-style summary of a numeric sample."""

    count: int
    mean: float
    stdev: float
    minimum: float
    median: float
    maximum: float

    def format(self, unit: str = "") -> str:
        suffix = f" {unit}" if unit else ""
        return (
            f"n={self.count} mean={self.mean:.2f}{suffix} "
            f"sd={self.stdev:.2f} min={self.minimum:g} "
            f"med={self.median:g} max={self.maximum:g}"
        )


def summarize(values: Iterable[float]) -> SampleSummary:
    """Summary statistics of a non-empty sample."""
    data = sorted(float(v) for v in values)
    if not data:
        raise ConfigurationError("cannot summarize an empty sample")
    n = len(data)
    mean = sum(data) / n
    variance = sum((v - mean) ** 2 for v in data) / n if n > 1 else 0.0
    mid = n // 2
    median = data[mid] if n % 2 == 1 else (data[mid - 1] + data[mid]) / 2
    return SampleSummary(
        count=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=data[0],
        median=median,
        maximum=data[-1],
    )


def quantile(values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (nearest-rank with linear interpolation)."""
    if not values:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("q must be within [0, 1]")
    data = sorted(float(v) for v in values)
    if len(data) == 1:
        return data[0]
    position = q * (len(data) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return data[low]
    weight = position - low
    return data[low] * (1 - weight) + data[high] * weight


def histogram(values: Iterable[int]) -> Dict[int, int]:
    """Exact integer histogram (value -> count), sorted by value."""
    counts: Dict[int, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return dict(sorted(counts.items()))


def histogram_bar_chart(values: Iterable[int], width: int = 40) -> str:
    """A fixed-width ASCII bar chart of an integer histogram."""
    counts = histogram(values)
    if not counts:
        return "(empty sample)"
    peak = max(counts.values())
    lines = []
    for value, count in counts.items():
        bar = "#" * max(1, round(width * count / peak))
        lines.append(f"{value:>6} | {bar} {count}")
    return "\n".join(lines)


def ratio_series(
    numerators: Sequence[float], denominators: Sequence[float]
) -> List[float]:
    """Element-wise ratios, guarding zero denominators as ratio 1.0."""
    if len(numerators) != len(denominators):
        raise ConfigurationError("series must have equal length")
    return [
        n / d if d else 1.0 for n, d in zip(numerators, denominators)
    ]
