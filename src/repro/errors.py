"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish graph-construction problems from
simulation problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """A graph is malformed or an operation received an invalid graph."""


class NodeNotFoundError(GraphError):
    """A referenced node is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph received one that is not."""


class SimulationError(ReproError):
    """A simulation reached an invalid internal state."""


class NonTerminationError(SimulationError):
    """A simulation exceeded its round budget without terminating.

    Synchronous amnesiac flooding provably terminates (Theorem 3.1), so in
    the synchronous engines this error indicates either a bug or a budget
    that is genuinely too small for the graph; in the asynchronous engine
    it is an expected outcome under adversarial scheduling (Section 4).
    """

    def __init__(self, rounds: int, message: str | None = None) -> None:
        text = message or (
            f"simulation did not terminate within the budget of {rounds} rounds"
        )
        super().__init__(text)
        self.rounds = rounds


class ConfigurationError(ReproError):
    """An experiment or engine was configured with invalid parameters."""
