"""Node-local knowledge: what a single participant can infer.

Amnesiac flooding's paradox is that the *system* terminates while no
*node* can tell.  This module makes the epistemics precise: it extracts
per-node **local transcripts** (everything one node observes -- the
rounds it received in and from whom) and implements inference rules
that consume only a transcript:

* a node that receives in two different rounds has **proof the graph is
  non-bipartite** (double receipt cannot happen on a bipartite
  component) and the gap/parity of its receipt rounds bounds the
  nearest odd cycle;
* the *source* additionally learns the component is non-bipartite from
  a single receipt (any echo at all) -- and learns nothing, ever, on a
  bipartite component;
* no transcript can certify termination: receipt histories of live and
  finished runs coincide (``termination_is_locally_invisible``
  exhibits the witness pair).

This operationalises the paper's "topology detection" application at
the right granularity -- individual nodes, zero extra state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.graphs.graph import Graph, Node
from repro.core.amnesiac import flood_trace, simulate


@dataclass(frozen=True)
class LocalTranscript:
    """Everything one node observes during a flood.

    ``receipts`` is the per-round view: (round, senders) pairs in
    ascending round order.  ``was_source`` marks the distinguished
    node, which also knows it sent in round 1.
    """

    node: Node
    was_source: bool
    receipts: Tuple[Tuple[int, FrozenSet[Node]], ...]

    @property
    def receipt_rounds(self) -> Tuple[int, ...]:
        return tuple(r for r, _ in self.receipts)

    @property
    def receipt_count(self) -> int:
        return len(self.receipts)


def local_transcripts(graph: Graph, sources: List[Node]) -> Dict[Node, LocalTranscript]:
    """Run AF (message-passing form) and extract every node's view."""
    trace = flood_trace(graph, sources)
    per_node: Dict[Node, List[Tuple[int, FrozenSet[Node]]]] = {
        node: [] for node in graph.nodes()
    }
    for round_number in range(1, trace.rounds_executed + 1):
        by_receiver: Dict[Node, List[Node]] = {}
        for message in trace.sent_in_round(round_number):
            by_receiver.setdefault(message.receiver, []).append(message.sender)
        for receiver, senders in by_receiver.items():
            per_node[receiver].append((round_number, frozenset(senders)))
    source_set = set(sources)
    return {
        node: LocalTranscript(
            node=node,
            was_source=node in source_set,
            receipts=tuple(per_node[node]),
        )
        for node in graph.nodes()
    }


def infers_nonbipartite(transcript: LocalTranscript) -> bool:
    """Whether this node alone can *prove* the component is non-bipartite.

    Single-source rules (sound, and complete across all nodes jointly):

    * any node receiving in two rounds -- impossible on a bipartite
      component, where AF is a single BFS wave;
    * the source receiving at all -- the echo only exists if the double
      cover is connected.
    """
    if transcript.was_source:
        return transcript.receipt_count >= 1
    return transcript.receipt_count >= 2


def odd_walk_bound(transcript: LocalTranscript) -> Optional[int]:
    """A node-local upper bound on the shortest odd closed walk length.

    For the source: its first receipt round is exactly the shortest odd
    closed walk through it.  For other double-receivers: the sum of the
    two receipt rounds bounds an odd closed walk through the source
    (down one parity, back the other), hence bounds the graph's odd
    girth plus twice the node's distance -- still a sound certificate
    of odd-cycle existence with a concrete length.
    """
    if transcript.was_source and transcript.receipt_count >= 1:
        return transcript.receipt_rounds[0]
    if transcript.receipt_count >= 2:
        return transcript.receipt_rounds[0] + transcript.receipt_rounds[1]
    return None


def knowledge_census(graph: Graph, source: Node) -> Dict[str, object]:
    """How many nodes end up knowing what, after one flood."""
    transcripts = local_transcripts(graph, [source])
    knowers = [
        node
        for node, transcript in transcripts.items()
        if infers_nonbipartite(transcript)
    ]
    bounds = {
        node: odd_walk_bound(transcript)
        for node, transcript in transcripts.items()
        if odd_walk_bound(transcript) is not None
    }
    return {
        "nodes": graph.num_nodes,
        "nonbipartite_knowers": sorted(knowers, key=repr),
        "knower_count": len(knowers),
        "odd_walk_bounds": bounds,
        "best_odd_walk_bound": min(bounds.values()) if bounds else None,
    }


def termination_is_locally_invisible(graph: Graph, source: Node) -> bool:
    """Exhibit that no node's transcript distinguishes "flood finished"
    from "flood still running elsewhere".

    Construction: compare each node's transcript truncated at any round
    ``r < T`` with a full transcript on the same graph -- for every node
    there exists a cut round at which its observations are already
    complete while messages are still in flight elsewhere.  Returns
    True when such a witness exists for at least one non-source node
    (always, whenever the run lasts >= 2 rounds).
    """
    run = simulate(graph, [source])
    if run.termination_round < 2:
        return False
    transcripts = local_transcripts(graph, [source])
    for node, transcript in transcripts.items():
        if node == source:
            continue
        rounds = transcript.receipt_rounds
        if rounds and rounds[-1] < run.termination_round:
            # This node's view was already final while the flood lived on.
            return True
    return False
