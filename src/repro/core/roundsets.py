"""Round-set analysis: the combinatorial core of Theorem 3.1's proof.

The proof of Theorem 3.1 works with *round-sets* ``R_0, R_1, ...``
(``R_0`` = the origin; ``R_i`` = nodes receiving the message in round
``i``) and with the family

    ``R  = { (R_s, ..., R_{s+d}) : d > 0 and R_s intersects R_{s+d} }``

of recurrence sequences, written here as ``(start, duration)`` pairs.
``Re`` is the subfamily with even duration.  Lemma 3.2 shows AF can only
be non-terminating if ``Re`` is non-empty, and the theorem's case
analysis (Figure 4) shows a minimal-even-duration, earliest-start
member of ``Re`` contradicts itself -- so ``Re`` is empty and AF
terminates.

This module makes all of that executable on real traces:

* extract round-sets from a run,
* enumerate recurrence pairs and their durations,
* verify the structural facts the proof predicts for every terminating
  execution: **no even-duration recurrence exists at all**, each node
  appears in at most two round-sets, and those appearances have
  opposite parity (the double-cover explanation of the same fact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple, Union

from repro.core.amnesiac import FloodingRun
from repro.graphs.graph import Node
from repro.sync.trace import ExecutionTrace

RoundSets = List[Set[Node]]


def round_sets_of(run: Union[FloodingRun, ExecutionTrace]) -> RoundSets:
    """The sequence ``[R_0, R_1, ..., R_T]`` of a finished run."""
    return run.round_sets()


@dataclass(frozen=True)
class Recurrence:
    """One member of the proof's family ``R``.

    A recurrence is a pair of round indices ``start < start + duration``
    whose round-sets share at least one node; ``nodes`` records the
    shared nodes (the ``x`` of the proof).
    """

    start: int
    duration: int
    nodes: Tuple[Node, ...]

    @property
    def is_even(self) -> bool:
        """Whether this recurrence belongs to ``Re`` (even duration)."""
        return self.duration % 2 == 0


def recurrences(round_sets: RoundSets) -> List[Recurrence]:
    """Every ``(start, duration)`` pair with intersecting round-sets.

    Quadratic in the number of rounds, which the paper bounds by
    ``2D + 1`` -- cheap in practice.
    """
    found: List[Recurrence] = []
    for start in range(len(round_sets)):
        for end in range(start + 1, len(round_sets)):
            shared = round_sets[start] & round_sets[end]
            if shared:
                found.append(
                    Recurrence(
                        start=start,
                        duration=end - start,
                        nodes=tuple(sorted(shared, key=repr)),
                    )
                )
    return found


def even_recurrences(round_sets: RoundSets) -> List[Recurrence]:
    """The family ``Re``: recurrences of even duration.

    Theorem 3.1's proof shows this list is empty for every amnesiac
    flooding execution; the claim experiments assert exactly that on
    thousands of traces.
    """
    return [r for r in recurrences(round_sets) if r.is_even]


def minimal_even_recurrence(round_sets: RoundSets) -> Union[Recurrence, None]:
    """The proof's ``R*``: minimum even duration, then earliest start.

    Returns ``None`` when ``Re`` is empty (the expected outcome).  If a
    variant process (e.g. a faulty or asynchronous schedule) does yield
    even recurrences, this identifies the witness the proof would
    dissect.
    """
    evens = even_recurrences(round_sets)
    if not evens:
        return None
    return min(evens, key=lambda r: (r.duration, r.start))


def node_appearances(round_sets: RoundSets) -> Dict[Node, List[int]]:
    """For each node, the ascending list of round indices it appears in."""
    appearances: Dict[Node, List[int]] = {}
    for index, members in enumerate(round_sets):
        for node in members:
            appearances.setdefault(node, []).append(index)
    return appearances


@dataclass
class RoundSetReport:
    """Structural verdict of the Theorem 3.1 analysis on one run.

    Attributes
    ----------
    rounds:
        Number of round-sets examined (``T + 1``).
    recurrence_count:
        Size of the family ``R``.
    even_recurrence_count:
        Size of ``Re`` -- the theorem predicts 0.
    max_appearances:
        Most round-sets any single node belongs to -- the double cover
        predicts at most 2 (one per parity).
    parity_consistent:
        True iff no node appears twice at the same round parity.
    witnesses:
        The offending even recurrences, if any (empty on sound runs).
    """

    rounds: int
    recurrence_count: int
    even_recurrence_count: int
    max_appearances: int
    parity_consistent: bool
    witnesses: List[Recurrence] = field(default_factory=list)

    @property
    def satisfies_theorem(self) -> bool:
        """The full structural prediction of Theorem 3.1's proof."""
        return (
            self.even_recurrence_count == 0
            and self.max_appearances <= 2
            and self.parity_consistent
        )


def analyze_round_sets(round_sets: RoundSets) -> RoundSetReport:
    """Run the complete Theorem 3.1 structural analysis on a round-set list."""
    all_recurrences = recurrences(round_sets)
    evens = [r for r in all_recurrences if r.is_even]
    appearances = node_appearances(round_sets)
    max_appearances = max((len(v) for v in appearances.values()), default=0)
    parity_consistent = all(
        len({index % 2 for index in indices}) == len(indices)
        for indices in appearances.values()
    )
    return RoundSetReport(
        rounds=len(round_sets),
        recurrence_count=len(all_recurrences),
        even_recurrence_count=len(evens),
        max_appearances=max_appearances,
        parity_consistent=parity_consistent,
        witnesses=evens,
    )


def analyze_run(run: Union[FloodingRun, ExecutionTrace]) -> RoundSetReport:
    """Convenience: extract round-sets from a run and analyse them."""
    return analyze_round_sets(round_sets_of(run))
