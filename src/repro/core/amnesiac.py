"""Amnesiac Flooding (Definition 1.1) -- the paper's algorithm.

Two independent implementations are provided and cross-checked by the
test suite:

1. :class:`AmnesiacFlooding`, a stateless
   :class:`~repro.sync.node.NodeAlgorithm` running on the generic
   synchronous engine.  This is the *faithful* form: each node sees only
   its inbox for the current round and its neighbour list, exactly as in
   the paper ("memory only of the present round").

2. :func:`simulate_reference`, a frontier-based simulator that tracks
   the set of directed edges carrying ``M`` each round as a Python set
   of node tuples.  The global state of amnesiac flooding *is* that
   edge set -- nodes keep nothing -- so this simulator is exact, and
   its transparent three-line step (:func:`step_frontier`) makes it the
   reference the fast path is checked against.

3. :func:`simulate`, the production entry point: same statistics,
   delegated to the CSR-indexed engines of :mod:`repro.fastpath`
   (pure-Python bitmasks, or numpy when importable and the graph is
   large).  The equivalence-matrix tests hold all three bit-for-bit
   equal.

All count rounds the paper's way: the initiator sends in round 1 and
the process terminates in round ``T`` when messages are sent in round
``T`` but none in round ``T + 1``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ConfigurationError, NodeNotFoundError, NonTerminationError
from repro.fastpath import simulate_indexed
from repro.graphs.graph import Graph, Node
from repro.sync.engine import default_round_budget, run_algorithm
from repro.sync.message import FLOOD_PAYLOAD, Message, Send
from repro.sync.node import NodeContext, StatelessAlgorithm, send_to_all, send_to_complement
from repro.sync.trace import ExecutionTrace


class AmnesiacFlooding(StatelessAlgorithm):
    """The amnesiac flooding node algorithm.

    A node that receives the message forwards it to exactly those
    neighbours it did *not* receive it from in the current round, then
    forgets everything.  The per-node state is ``None`` -- statelessness
    is the property the paper studies, and the engine enforces that the
    algorithm can only react to the current round's inbox.
    """

    def __init__(self, payload: Hashable = FLOOD_PAYLOAD) -> None:
        self.payload = payload

    def on_start(self, state: None, ctx: NodeContext) -> List[Send]:
        """Round 1: the distinguished node sends ``M`` to all neighbours."""
        return send_to_all(ctx, self.payload)

    def on_receive(
        self, state: None, inbox: List[Message], ctx: NodeContext
    ) -> List[Send]:
        """Forward ``M`` to the complement of this round's senders."""
        senders = [m.sender for m in inbox if m.payload == self.payload]
        if not senders:
            return []
        return send_to_complement(ctx, senders, self.payload)


def flood_trace(
    graph: Graph,
    sources: Iterable[Node],
    max_rounds: Optional[int] = None,
    payload: Hashable = FLOOD_PAYLOAD,
) -> ExecutionTrace:
    """Run amnesiac flooding on the message-passing engine; full trace.

    ``sources`` may be a single-element list (the paper's distinguished
    node) or a larger set (the multi-source extension).
    """
    return run_algorithm(
        graph,
        AmnesiacFlooding(payload),
        initiators=sources,
        max_rounds=max_rounds,
    )


# ----------------------------------------------------------------------
# Fast frontier simulator
# ----------------------------------------------------------------------

DirectedEdge = Tuple[Node, Node]


@dataclass
class FloodingRun:
    """Result of a fast amnesiac-flooding simulation.

    Attributes
    ----------
    graph, sources:
        The inputs.
    terminated:
        True iff the run reached a round with no message in flight
        within its budget (always true on sound inputs -- Theorem 3.1).
    termination_round:
        The last round in which a message was sent (0 if the sources
        have no neighbours).
    total_messages:
        Point-to-point message count over the run.
    receive_rounds:
        For each node, the ascending tuple of rounds at which it
        received the message (empty for unreached nodes; sources start
        holding the message, which is not a receipt).
    round_edge_counts:
        ``round_edge_counts[i]`` is the number of directed messages sent
        in round ``i + 1``.
    sender_sets:
        For each round (1-based index ``i + 1``), the frozenset of nodes
        that sent during that round -- the "circled nodes" of the
        paper's figures.
    """

    graph: Graph
    sources: Tuple[Node, ...]
    terminated: bool
    termination_round: int
    total_messages: int
    receive_rounds: Dict[Node, Tuple[int, ...]]
    round_edge_counts: List[int] = field(default_factory=list)
    sender_sets: List[FrozenSet[Node]] = field(default_factory=list)

    def receive_counts(self) -> Dict[Node, int]:
        """Number of rounds each node received the message in."""
        return {node: len(rounds) for node, rounds in self.receive_rounds.items()}

    def nodes_reached(self) -> Set[Node]:
        """Nodes that held the message at some point (sources included)."""
        reached = {
            node for node, rounds in self.receive_rounds.items() if rounds
        }
        reached.update(self.sources)
        return reached

    def round_sets(self) -> List[Set[Node]]:
        """The paper's ``R_0, R_1, ..., R_T`` receiver sets."""
        sets: List[Set[Node]] = [set(self.sources)]
        for round_number in range(1, self.termination_round + 1):
            sets.append(
                {
                    node
                    for node, rounds in self.receive_rounds.items()
                    if round_number in rounds
                }
            )
        return sets

    def __repr__(self) -> str:
        status = "terminated" if self.terminated else "cut off"
        return (
            f"FloodingRun(rounds={self.termination_round}, "
            f"messages={self.total_messages}, {status})"
        )


def initial_frontier(graph: Graph, sources: Sequence[Node]) -> Set[DirectedEdge]:
    """The directed edges carrying ``M`` in round 1: sources to all neighbours."""
    # A set comprehension: its output is unordered, so walking the
    # neighbour sets directly is order-free (REP002-clean by shape).
    return {
        (source, neighbour)
        for source in sources
        for neighbour in graph.neighbors(source)
    }


def step_frontier(graph: Graph, frontier: Set[DirectedEdge]) -> Set[DirectedEdge]:
    """One round of amnesiac flooding on the directed-edge frontier.

    Every receiver forwards to the complement of the set of neighbours
    it heard from; the result is the next round's directed edge set.
    This three-line function *is* the global dynamics of the process --
    there is no other state.
    """
    heard_from: Dict[Node, Set[Node]] = defaultdict(set)
    for sender, receiver in frontier:
        heard_from[receiver].add(sender)
    return {
        (receiver, neighbour)
        for receiver, senders in heard_from.items()
        for neighbour in graph.neighbors(receiver)
        if neighbour not in senders
    }


def simulate(
    graph: Graph,
    sources: Iterable[Node],
    max_rounds: Optional[int] = None,
    raise_on_budget: bool = False,
    backend: Optional[str] = None,
) -> FloodingRun:
    """Fast exact simulation of amnesiac flooding.

    Parameters mirror :func:`flood_trace`; the result is a
    :class:`FloodingRun` carrying every statistic the analysis layer
    needs without materialising per-message objects.  The run executes
    on the CSR-indexed engines of :mod:`repro.fastpath`; ``backend``
    pins ``"pure"``, ``"numpy"`` or ``"oracle"`` (the double-cover
    prediction -- O(n + m) total, bit-identical statistics); the
    default auto-selects a frontier engine.

    Raises
    ------
    ConfigurationError
        If no sources are given, ``max_rounds < 1``, or ``backend`` is
        unknown/unavailable.
    NonTerminationError
        If ``raise_on_budget`` is set and the budget is exhausted.
    """
    run = simulate_indexed(
        graph,
        sources,
        max_rounds=max_rounds,
        raise_on_budget=raise_on_budget,
        backend=backend,
    )
    return FloodingRun(
        graph=graph,
        sources=run.sources,
        terminated=run.terminated,
        termination_round=run.termination_round,
        total_messages=run.total_messages,
        receive_rounds=run.receive_rounds(),
        round_edge_counts=run.round_edge_counts,
        sender_sets=run.sender_sets(),
    )


def simulate_reference(
    graph: Graph,
    sources: Iterable[Node],
    max_rounds: Optional[int] = None,
    raise_on_budget: bool = False,
) -> FloodingRun:
    """Set-based reference simulation of amnesiac flooding.

    The original frontier simulator, kept as the transparent
    second opinion: the equivalence-matrix tests check the fast
    backends against it, and the scaling benchmarks use it as the
    speedup baseline.  Semantics are identical to :func:`simulate`.
    """
    if max_rounds is not None and max_rounds < 1:
        raise ConfigurationError("max_rounds must be >= 1")
    source_list: List[Node] = []
    seen: Set[Node] = set()
    for source in sources:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if source not in seen:
            seen.add(source)
            source_list.append(source)
    if not source_list:
        raise ConfigurationError("at least one source is required")

    budget = default_round_budget(graph) if max_rounds is None else max_rounds
    receive_rounds: Dict[Node, List[int]] = {node: [] for node in graph.nodes()}
    round_edge_counts: List[int] = []
    sender_sets: List[FrozenSet[Node]] = []
    total_messages = 0
    terminated = True

    frontier = initial_frontier(graph, source_list)
    round_number = 1
    while frontier:
        if round_number > budget:
            terminated = False
            if raise_on_budget:
                raise NonTerminationError(budget)
            break
        round_edge_counts.append(len(frontier))
        sender_sets.append(frozenset(sender for sender, _ in frontier))
        total_messages += len(frontier)
        for _, receiver in frontier:
            rounds = receive_rounds[receiver]
            if not rounds or rounds[-1] != round_number:
                rounds.append(round_number)
        frontier = step_frontier(graph, frontier)
        round_number += 1

    return FloodingRun(
        graph=graph,
        sources=tuple(source_list),
        terminated=terminated,
        termination_round=len(round_edge_counts) if terminated else round_number - 1,
        total_messages=total_messages,
        receive_rounds={
            node: tuple(rounds) for node, rounds in receive_rounds.items()
        },
        round_edge_counts=round_edge_counts,
        sender_sets=sender_sets,
    )


def termination_round(graph: Graph, source: Node) -> int:
    """The round in which amnesiac flooding from ``source`` terminates."""
    return simulate_indexed(
        graph, [source], collect_senders=False, collect_receives=False
    ).termination_round


def message_complexity(graph: Graph, source: Node) -> int:
    """Total messages amnesiac flooding from ``source`` sends."""
    return simulate_indexed(
        graph, [source], collect_senders=False, collect_receives=False
    ).total_messages
