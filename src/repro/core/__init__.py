"""The paper's primary contribution: amnesiac flooding and its analysis.

* :mod:`~repro.core.amnesiac` -- the algorithm (message-passing form and
  fast frontier simulator).
* :mod:`~repro.core.termination` -- termination predicates and the
  paper's bounds (Lemma 2.1, Corollary 2.2, Theorems 3.1/3.3).
* :mod:`~repro.core.roundsets` -- the round-set machinery of Theorem
  3.1's proof, executable on traces.
* :mod:`~repro.core.oracle` -- exact closed-form predictions via the
  bipartite double cover.
* :mod:`~repro.core.multisource` -- the multi-source extension.
"""

from repro.core.amnesiac import (
    AmnesiacFlooding,
    FloodingRun,
    flood_trace,
    initial_frontier,
    message_complexity,
    simulate,
    simulate_reference,
    step_frontier,
    termination_round,
)
from repro.core.knowledge import (
    LocalTranscript,
    infers_nonbipartite,
    knowledge_census,
    local_transcripts,
    odd_walk_bound,
    termination_is_locally_invisible,
)
from repro.core.initial_conditions import (
    ConfigurationCensus,
    EvolutionResult,
    classify_all_configurations,
    configuration_terminates,
    evolve,
    single_message_orbit,
    source_configuration,
)
from repro.core.multisource import (
    MultiSourceBounds,
    ReceiptCensus,
    receipt_census,
    receipt_census_batch,
    all_pairs_termination,
    flood_from_set,
    multi_source_bounds,
    predict_multi_source,
)
from repro.core.oracle import (
    OraclePrediction,
    parity_signature,
    predict,
    predict_single,
)
from repro.core.roundsets import (
    Recurrence,
    RoundSetReport,
    analyze_round_sets,
    analyze_run,
    even_recurrences,
    minimal_even_recurrence,
    node_appearances,
    recurrences,
    round_sets_of,
)
from repro.core.termination import (
    TerminationBounds,
    bipartite_exactness_gap,
    oracle_round,
    respects_bounds,
    terminates,
    theoretical_bounds,
)

__all__ = [
    "AmnesiacFlooding",
    "LocalTranscript",
    "infers_nonbipartite",
    "knowledge_census",
    "local_transcripts",
    "odd_walk_bound",
    "termination_is_locally_invisible",
    "ConfigurationCensus",
    "EvolutionResult",
    "classify_all_configurations",
    "configuration_terminates",
    "evolve",
    "single_message_orbit",
    "source_configuration",
    "FloodingRun",
    "flood_trace",
    "initial_frontier",
    "message_complexity",
    "simulate",
    "simulate_reference",
    "step_frontier",
    "termination_round",
    "MultiSourceBounds",
    "ReceiptCensus",
    "receipt_census",
    "receipt_census_batch",
    "all_pairs_termination",
    "flood_from_set",
    "multi_source_bounds",
    "predict_multi_source",
    "OraclePrediction",
    "parity_signature",
    "predict",
    "predict_single",
    "Recurrence",
    "RoundSetReport",
    "analyze_round_sets",
    "analyze_run",
    "even_recurrences",
    "minimal_even_recurrence",
    "node_appearances",
    "recurrences",
    "round_sets_of",
    "TerminationBounds",
    "bipartite_exactness_gap",
    "oracle_round",
    "respects_bounds",
    "terminates",
    "theoretical_bounds",
]
