"""Synchronous amnesiac flooding from *arbitrary* initial configurations.

The paper starts the flood in a specific state: all edges out of the
source(s) carry ``M``.  A natural follow-up question (in the spirit of
the paper's open questions) is what happens when the synchronous
process starts from an **arbitrary** set of in-transit directed
messages -- e.g. the residue of a partially completed flood, or a state
injected by a transient fault.

The answer is *not* "it always terminates":

* a single directed message on a cycle circulates forever (each
  receiver forwards to its one other neighbour, round after round);
* on trees every initial configuration terminates (messages only ever
  move away from their starting points and fall off the leaves);
* source-style configurations (all out-edges of a node set) always
  terminate -- that is Theorem 3.1.

So the termination theorem is a statement about *reachable* initial
conditions, and this module makes the boundary explorable: evolve any
configuration, decide termination by cycle detection (the state space
is finite and the dynamics deterministic), and exhaustively classify
all configurations of small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.graphs.graph import Graph, Node
from repro.core.amnesiac import step_frontier

DirectedEdge = Tuple[Node, Node]
Configuration = FrozenSet[DirectedEdge]


def validate_configuration(graph: Graph, configuration: Iterable[DirectedEdge]) -> Configuration:
    """Freeze and validate a configuration against the topology."""
    config = frozenset(configuration)
    for sender, receiver in config:
        if not graph.has_edge(sender, receiver):
            raise SimulationError(
                f"configuration contains non-edge message {sender!r}->{receiver!r}"
            )
    return config


@dataclass(frozen=True)
class EvolutionResult:
    """Outcome of evolving one initial configuration synchronously.

    ``terminates`` is decided exactly: the dynamics are deterministic
    over a finite state space, so the orbit either reaches the empty
    configuration or enters a cycle.  ``steps_to_outcome`` is the number
    of rounds until the empty configuration (if terminating) or until
    the first repeated configuration (if not).  ``cycle_length`` is the
    period of the limit cycle for non-terminating orbits (``None``
    otherwise).
    """

    initial: Configuration
    terminates: bool
    steps_to_outcome: int
    cycle_length: Optional[int]
    max_configuration_size: int


def evolve(graph: Graph, initial: Iterable[DirectedEdge]) -> EvolutionResult:
    """Evolve a configuration under synchronous AF until a decision.

    Termination is decided exactly by memoising the orbit; there is no
    budget to tune because the state space is finite (though
    exponential, so keep graphs small for adversarially dense inputs --
    orbits of source-style states are short).
    """
    config = validate_configuration(graph, initial)
    seen: Dict[Configuration, int] = {config: 0}
    current = config
    peak = len(config)
    step = 0
    while current:
        current = frozenset(step_frontier(graph, set(current)))
        step += 1
        peak = max(peak, len(current))
        if current in seen:
            return EvolutionResult(
                initial=config,
                terminates=False,
                steps_to_outcome=seen[current],
                cycle_length=step - seen[current],
                max_configuration_size=peak,
            )
        seen[current] = step
    return EvolutionResult(
        initial=config,
        terminates=True,
        steps_to_outcome=step,
        cycle_length=None,
        max_configuration_size=peak,
    )


def configuration_terminates(graph: Graph, initial: Iterable[DirectedEdge]) -> bool:
    """Whether synchronous AF from this configuration reaches silence."""
    return evolve(graph, initial).terminates


def source_configuration(graph: Graph, sources: Iterable[Node]) -> Configuration:
    """The paper's initial condition: all out-edges of the source set."""
    config: Set[DirectedEdge] = set()
    for source in sources:
        for neighbour in graph.neighbors(source):
            config.add((source, neighbour))
    return frozenset(config)


@dataclass
class ConfigurationCensus:
    """Exhaustive classification of every configuration of a graph.

    ``total`` counts all non-empty subsets of directed edges;
    ``terminating`` how many of them reach the empty configuration.
    ``nonterminating_examples`` holds a few smallest witnesses.
    """

    graph: Graph
    total: int
    terminating: int
    nonterminating_examples: List[Configuration]

    @property
    def nonterminating(self) -> int:
        return self.total - self.terminating

    @property
    def terminating_fraction(self) -> float:
        return self.terminating / self.total if self.total else 1.0


def classify_all_configurations(
    graph: Graph, max_directed_edges: int = 14
) -> ConfigurationCensus:
    """Evolve every non-empty configuration of a small graph.

    Raises :class:`ConfigurationError` if the graph has more than
    ``max_directed_edges`` directed edges (the census is exponential).
    """
    directed: List[DirectedEdge] = []
    for u, v in graph.edges():
        directed.append((u, v))
        directed.append((v, u))
    if len(directed) > max_directed_edges:
        raise ConfigurationError(
            f"census over {len(directed)} directed edges is too large "
            f"(cap: {max_directed_edges})"
        )
    total = 0
    terminating = 0
    witnesses: List[Configuration] = []
    for size in range(1, len(directed) + 1):
        for combo in combinations(directed, size):
            total += 1
            if evolve(graph, combo).terminates:
                terminating += 1
            elif len(witnesses) < 5:
                witnesses.append(frozenset(combo))
    return ConfigurationCensus(
        graph=graph,
        total=total,
        terminating=terminating,
        nonterminating_examples=witnesses,
    )


def single_message_orbit(
    graph: Graph, edge: DirectedEdge, max_steps: int = 200
) -> List[Configuration]:
    """The orbit of one lone in-transit message (for demos and tests).

    On a cycle this walks forever (the result is truncated at
    ``max_steps``); on a tree it slides to a leaf and vanishes.
    """
    config = validate_configuration(graph, [edge])
    orbit = [config]
    current = config
    for _ in range(max_steps):
        if not current:
            break
        current = frozenset(step_frontier(graph, set(current)))
        orbit.append(current)
    return orbit
