"""Synchronous amnesiac flooding from *arbitrary* initial configurations.

The paper starts the flood in a specific state: all edges out of the
source(s) carry ``M``.  A natural follow-up question (in the spirit of
the paper's open questions) is what happens when the synchronous
process starts from an **arbitrary** set of in-transit directed
messages -- e.g. the residue of a partially completed flood, or a state
injected by a transient fault.

The answer is *not* "it always terminates":

* a single directed message on a cycle circulates forever (each
  receiver forwards to its one other neighbour, round after round);
* on trees every initial configuration terminates (messages only ever
  move away from their starting points and fall off the leaves);
* source-style configurations (all out-edges of a node set) always
  terminate -- that is Theorem 3.1.

So the termination theorem is a statement about *reachable* initial
conditions, and this module makes the boundary explorable: evolve any
configuration, decide termination by cycle detection (the state space
is finite and the dynamics deterministic), and exhaustively classify
all configurations of small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.fastpath import (
    IndexedGraph,
    arc_mask_of,
    configuration_of_mask,
    evolve_arc_mask,
    step_arc_mask,
)
from repro.graphs.graph import Graph, Node
from repro.sync.engine import default_round_budget

DirectedEdge = Tuple[Node, Node]
Configuration = FrozenSet[DirectedEdge]


def validate_configuration(graph: Graph, configuration: Iterable[DirectedEdge]) -> Configuration:
    """Freeze and validate a configuration against the topology."""
    config = frozenset(configuration)
    # Sorted walk so *which* bad message the error names is stable
    # across hash seeds (repr-keyed: message endpoints may mix types).
    for sender, receiver in sorted(config, key=repr):
        if not graph.has_edge(sender, receiver):
            raise SimulationError(
                f"configuration contains non-edge message {sender!r}->{receiver!r}"
            )
    return config


@dataclass(frozen=True)
class EvolutionResult:
    """Outcome of evolving one initial configuration synchronously.

    ``terminates`` is decided exactly: the dynamics are deterministic
    over a finite state space, so the orbit either reaches the empty
    configuration or enters a cycle.  ``steps_to_outcome`` is the number
    of rounds until the empty configuration (if terminating) or until
    the first repeated configuration (if not).  ``cycle_length`` is the
    period of the limit cycle for non-terminating orbits (``None``
    otherwise).
    """

    initial: Configuration
    terminates: bool
    steps_to_outcome: int
    cycle_length: Optional[int]
    max_configuration_size: int


def evolve(graph: Graph, initial: Iterable[DirectedEdge]) -> EvolutionResult:
    """Evolve a configuration under synchronous AF until a decision.

    Termination is decided exactly by memoising the orbit; there is no
    budget to tune because the state space is finite (though
    exponential, so keep graphs small for adversarially dense inputs --
    orbits of source-style states are short).  The orbit runs on
    :mod:`repro.fastpath` arc bitmasks: each configuration is one
    integer, so hashing and stepping cost machine-word operations
    instead of frozenset churn.
    """
    config = validate_configuration(graph, initial)
    index = IndexedGraph.of(graph)
    terminates, steps, cycle_length, peak = evolve_arc_mask(
        index, arc_mask_of(index, config)
    )
    return EvolutionResult(
        initial=config,
        terminates=terminates,
        steps_to_outcome=steps,
        cycle_length=cycle_length,
        max_configuration_size=peak,
    )


def configuration_terminates(graph: Graph, initial: Iterable[DirectedEdge]) -> bool:
    """Whether synchronous AF from this configuration reaches silence."""
    return evolve(graph, initial).terminates


def source_configuration(graph: Graph, sources: Iterable[Node]) -> Configuration:
    """The paper's initial condition: all out-edges of the source set."""
    return frozenset(
        (source, neighbour)
        for source in sources
        for neighbour in graph.neighbors(source)
    )


@dataclass
class ConfigurationCensus:
    """Exhaustive classification of every configuration of a graph.

    ``total`` counts all non-empty subsets of directed edges;
    ``terminating`` how many of them reach the empty configuration.
    ``nonterminating_examples`` holds a few smallest witnesses.
    """

    graph: Graph
    total: int
    terminating: int
    nonterminating_examples: List[Configuration]

    @property
    def nonterminating(self) -> int:
        return self.total - self.terminating

    @property
    def terminating_fraction(self) -> float:
        return self.terminating / self.total if self.total else 1.0


def classify_all_configurations(
    graph: Graph,
    max_directed_edges: int = 14,
    workers: Optional[int] = None,
) -> ConfigurationCensus:
    """Evolve every non-empty configuration of a small graph.

    Raises :class:`ConfigurationError` if the graph has more than
    ``max_directed_edges`` directed edges (the census is exponential).

    The ``2^(2m) - 1`` orbit detections are independent, so the census
    runs through :func:`repro.parallel.classify_masks`, which shards
    them across the machine's cores (``workers=None`` auto-sizes and
    stays serial for small graphs or single-core machines).  Witness
    selection is position-merged, so the result -- counts *and* the
    first five non-terminating examples -- is identical for every
    worker count.
    """
    from repro.parallel import classify_masks

    directed: List[DirectedEdge] = []
    for u, v in graph.edges():
        directed.append((u, v))
        directed.append((v, u))
    if len(directed) > max_directed_edges:
        raise ConfigurationError(
            f"census over {len(directed)} directed edges is too large "
            f"(cap: {max_directed_edges})"
        )
    index = IndexedGraph.of(graph)
    bits = [1 << index.arc_slot(u, v) for u, v in directed]
    # Enumeration order (by size, then combination order) is part of
    # the output contract: witnesses are the *first* non-terminating
    # configurations in this order.
    masks: List[int] = []
    for size in range(1, len(bits) + 1):
        for combo in combinations(bits, size):
            mask = 0
            for bit in combo:
                mask |= bit
            masks.append(mask)
    terminating, witness_masks = classify_masks(graph, masks, workers=workers)
    return ConfigurationCensus(
        graph=graph,
        total=len(masks),
        terminating=terminating,
        nonterminating_examples=[
            configuration_of_mask(index, mask) for mask in witness_masks
        ],
    )


def single_message_orbit(
    graph: Graph, edge: DirectedEdge, max_steps: Optional[int] = None
) -> List[Configuration]:
    """The orbit of one lone in-transit message (for demos and tests).

    On a cycle this walks forever (the result is truncated at the step
    budget -- ``None`` resolves to the graph-scaled
    :func:`~repro.sync.engine.default_round_budget`, the uniform budget
    rule); on a tree it slides to a leaf and vanishes.
    """
    if max_steps is None:
        max_steps = default_round_budget(graph)
    config = validate_configuration(graph, [edge])
    index = IndexedGraph.of(graph)
    mask = arc_mask_of(index, config)
    orbit = [config]
    for _ in range(max_steps):
        if not mask:
            break
        mask = step_arc_mask(index, mask)
        orbit.append(configuration_of_mask(index, mask))
    return orbit
