"""Multi-source amnesiac flooding (the full paper's extension).

The brief announcement studies a single distinguished node; the
authors' full version generalises to an arbitrary non-empty initiator
set ``I`` (all members send in round 1; the forwarding rule is
unchanged).  The double-cover correspondence generalises too -- replace
BFS by set-BFS from ``{(v, 0) : v in I}`` -- so the oracle remains
exact, and the bounds become:

* bipartite with bipartition ``(X, Y)``: termination in exactly
  ``max(e(I intersect X), e(I intersect Y))`` rounds -- each side of
  the bipartition floods its own copy of the double cover
  independently (for ``|I| = 1`` this is Lemma 2.1's ``e(source)``);
* general: termination within ``e(I) + D + 1`` rounds.

These are checked by ``tests/core/test_multisource.py`` and swept by
``benchmarks/bench_claim_multisource.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError, DisconnectedGraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import bipartition, is_connected
from repro.graphs.traversal import diameter, set_eccentricity
from repro.core.amnesiac import FloodingRun, simulate
from repro.core.oracle import OraclePrediction, predict
from repro.parallel import parallel_sweep


@dataclass(frozen=True)
class MultiSourceBounds:
    """Termination bounds for AF from an initiator set ``I``.

    ``lower`` is the set eccentricity ``e(I)`` (information must reach
    the farthest node).  On bipartite graphs the exact round is known
    in closed form but it is *not* ``e(I)``: sources on the two sides
    of the bipartition land in the two different copies of the double
    cover and flood them independently, so the run lasts

        ``max(e(I intersect X), e(I intersect Y))``

    where ``(X, Y)`` is the bipartition (an empty side contributes 0).
    For a single source this collapses to Lemma 2.1's ``e(source)``.
    On non-bipartite graphs ``upper`` is the full paper's
    ``e(I) + D + 1`` and ``exact`` is ``None`` (the double-cover oracle
    still predicts the exact round, just not via a formula of ``e`` and
    ``D`` alone).
    """

    lower: int
    upper: int
    exact: Optional[int]
    bipartite: bool


def flood_from_set(
    graph: Graph,
    sources: Iterable[Node],
    max_rounds: Optional[int] = None,
) -> FloodingRun:
    """Run multi-source amnesiac flooding (fast simulator)."""
    source_list = list(sources)
    if not source_list:
        raise ConfigurationError("multi-source flooding needs a non-empty set")
    return simulate(graph, source_list, max_rounds=max_rounds)


def multi_source_bounds(graph: Graph, sources: Iterable[Node]) -> MultiSourceBounds:
    """The full paper's multi-source termination bounds.

    Raises :class:`DisconnectedGraphError` on disconnected input, like
    the single-source bound helper.
    """
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "multi-source bounds are stated for connected graphs"
        )
    source_list = list(sources)
    if not source_list:
        raise ConfigurationError("multi-source bounds need a non-empty set")
    ecc = set_eccentricity(graph, source_list)
    parts = bipartition(graph)
    if parts is not None:
        per_side = [
            set_eccentricity(graph, side_sources)
            for side in parts
            if (side_sources := [v for v in source_list if v in side])
        ]
        exact = max(per_side) if per_side else 0
        return MultiSourceBounds(lower=ecc, upper=exact, exact=exact, bipartite=True)
    return MultiSourceBounds(
        lower=ecc, upper=ecc + diameter(graph) + 1, exact=None, bipartite=False
    )


def predict_multi_source(graph: Graph, sources: Iterable[Node]) -> OraclePrediction:
    """Exact multi-source prediction via set-BFS on the double cover."""
    return predict(graph, list(sources))


@dataclass(frozen=True)
class ReceiptCensus:
    """Who hears the message how often, under a multi-source flood.

    A surprise of the multi-source setting: **even bipartite graphs can
    deliver twice**.  Sources on the two sides of the bipartition flood
    the two copies of the double cover independently, and any node
    reachable in both copies receives once per copy.  The census
    reports the exact per-count node sets (predicted by the cover,
    verified against simulation in the tests).
    """

    once: Tuple[Node, ...]
    twice: Tuple[Node, ...]
    never: Tuple[Node, ...]

    def counts(self) -> Dict[int, int]:
        """Histogram {receipts: node count}."""
        return {0: len(self.never), 1: len(self.once), 2: len(self.twice)}


def receipt_census(graph: Graph, sources: Iterable[Node]) -> ReceiptCensus:
    """Classify every node by how many times it will receive the message.

    A batch-of-one :func:`receipt_census_batch`; sweep many source sets
    through the batch form instead, which rides the word-packed bitset
    cover sweep.
    """
    return receipt_census_batch(graph, [list(sources)])[0]


def receipt_census_batch(
    graph: Graph,
    source_sets: Iterable[Iterable[Node]],
    workers: Optional[int] = None,
) -> List[ReceiptCensus]:
    """One :class:`ReceiptCensus` per source set, as a single batch.

    The whole batch runs as one oracle-backed sweep through
    :func:`repro.parallel.census.receipt_counts`: the graph indexes
    once, large deterministic batches take the bitset cover sweep
    (64 source sets per word pass), and the usual pool sharding rules
    apply.  Each census is bit-identical to the per-call
    :func:`receipt_census` (which is now a batch of one) and to the
    original explicit-cover :func:`~repro.core.oracle.predict`
    classification -- the regression tests pin both.
    """
    from repro.parallel.census import receipt_counts

    count_rows = receipt_counts(graph, list(source_sets), workers=workers)
    nodes = graph.nodes()
    censuses: List[ReceiptCensus] = []
    for counts in count_rows:
        once: List[Node] = []
        twice: List[Node] = []
        never: List[Node] = []
        for node, count in zip(nodes, counts):
            if count == 0:
                never.append(node)
            elif count == 1:
                once.append(node)
            else:
                twice.append(node)
        censuses.append(
            ReceiptCensus(
                once=tuple(once), twice=tuple(twice), never=tuple(never)
            )
        )
    return censuses


def all_pairs_termination(
    graph: Graph, pair_limit: Optional[int] = None
) -> List[Tuple[Tuple[Node, Node], int]]:
    """Termination rounds for two-source floods over node pairs.

    Enumerates unordered pairs in deterministic order (optionally capped
    at ``pair_limit`` pairs) -- used by the multi-source sweep benchmark
    to show how termination time shrinks as sources spread out.

    Runs as one :func:`repro.parallel.parallel_sweep` batch: the graph
    is CSR-indexed once, the quadratic pair enumeration is sharded
    across the machine's cores (serial below the pool's batch floor),
    and each pair flood collects only the scalar statistics.  The
    double-cover oracle backend answers the termination round in
    O(n + m) per pair independent of flood length, and because the
    batch is deterministic and oracle-resolved it rides the word-packed
    bitset cover sweep (:mod:`repro.fastpath.bitset_oracle`): 64 pairs
    flood per word pass, all pairs in O(n * (n + m)) words total.  The
    equivalence matrix holds every lane bit-for-bit equal to the
    frontier engines, so the output is identical to simulating every
    pair.
    """
    nodes = graph.nodes()
    pairs: List[Tuple[Node, Node]] = []
    for i in range(len(nodes)):
        for j in range(i + 1, len(nodes)):
            if pair_limit is not None and len(pairs) >= pair_limit:
                break
            pairs.append((nodes[i], nodes[j]))
        if pair_limit is not None and len(pairs) >= pair_limit:
            break
    runs = parallel_sweep(graph, pairs, backend="oracle")
    return [
        (pair, run.termination_round) for pair, run in zip(pairs, runs)
    ]
