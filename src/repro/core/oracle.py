"""Exact closed-form predictions for amnesiac flooding.

The double cover of the topology (see
:mod:`repro.graphs.double_cover`) yields exact, simulation-free
predictions of everything the simulator measures: termination round,
per-node receive rounds, receive counts and message complexity.  The
predictions are packaged as :class:`OraclePrediction` and compared
against real runs by :func:`repro.analysis.verify.check_run_against_oracle`
and by the hypothesis property tests.

Because the oracle is plain BFS on a different graph, agreement with
the round-by-round simulator is meaningful evidence that both are
correct -- they cannot share a bug in the flooding rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.graphs.double_cover import (
    predicted_message_complexity,
    predicted_receive_rounds,
    predicted_termination_round,
)
from repro.graphs.graph import Graph, Node


@dataclass(frozen=True)
class OraclePrediction:
    """Closed-form prediction of an amnesiac flooding run.

    Attributes
    ----------
    termination_round:
        The exact round after which no edge carries the message.
    receive_rounds:
        Ascending receive rounds per node (length 0, 1 or 2).
    total_messages:
        Exact point-to-point message count.
    """

    termination_round: int
    receive_rounds: Dict[Node, Tuple[int, ...]]
    total_messages: int

    def receive_counts(self) -> Dict[Node, int]:
        """Predicted number of receipts per node (0, 1 or 2)."""
        return {node: len(rounds) for node, rounds in self.receive_rounds.items()}

    def max_receipts(self) -> int:
        """The largest per-node receipt count (2 iff non-bipartite reach)."""
        counts = self.receive_counts()
        return max(counts.values()) if counts else 0


def predict(graph: Graph, sources: Iterable[Node]) -> OraclePrediction:
    """Predict the complete behaviour of amnesiac flooding from ``sources``.

    The prediction is exact for the synchronous fault-free model of the
    paper; it says nothing about the asynchronous variant (Section 4),
    which has no termination round to predict.
    """
    source_list = list(sources)
    return OraclePrediction(
        termination_round=predicted_termination_round(graph, source_list),
        receive_rounds=predicted_receive_rounds(graph, source_list),
        total_messages=predicted_message_complexity(graph, source_list),
    )


def predict_single(graph: Graph, source: Node) -> OraclePrediction:
    """Single-source convenience wrapper for :func:`predict`."""
    return predict(graph, [source])


def parity_signature(graph: Graph, source: Node) -> Dict[Node, Tuple[int, ...]]:
    """The per-node parity pattern of receive rounds.

    On any graph a node receives at most once at an even round and at
    most once at an odd round (the double cover has one copy per
    parity); this function returns those parities and is used by the
    round-set analysis (no even-duration recurrence, Theorem 3.1's
    pivotal fact).
    """
    rounds = predicted_receive_rounds(graph, [source])
    return {
        node: tuple(sorted(r % 2 for r in value)) for node, value in rounds.items()
    }
