"""Termination predicates and the paper's theoretical bounds.

This module turns the paper's four termination statements into
executable checks:

* Theorem 3.1 -- AF terminates on every finite graph
  (:func:`terminates`, which is also verified structurally by the
  round-set analysis in :mod:`repro.core.roundsets`).
* Lemma 2.1 -- on a connected bipartite graph AF terminates in exactly
  the source's eccentricity (:func:`theoretical_bounds` reports
  ``exact``).
* Corollary 2.2 -- hence at most the diameter.
* Theorem 3.3 -- on a connected non-bipartite graph AF terminates by
  round ``2D + 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import DisconnectedGraphError
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_bipartite, is_connected
from repro.graphs.traversal import diameter, eccentricity, set_eccentricity
from repro.core.amnesiac import simulate
from repro.core.oracle import predict


@dataclass(frozen=True)
class TerminationBounds:
    """The paper's bounds for one (graph, source-set) instance.

    Attributes
    ----------
    lower:
        A proven lower bound on the termination round: the flood cannot
        stop before the farthest reachable node has been reached, so
        this is the source(-set) eccentricity.
    upper:
        The paper's upper bound: ``e(source)`` on bipartite graphs
        (Lemma 2.1, tight) and ``2D + 1`` otherwise (Theorem 3.3).
    exact:
        The exact round where known in closed form: equals ``lower`` on
        bipartite graphs; ``None`` for the general case (the oracle
        still predicts it exactly -- see :func:`oracle_round` -- but not
        via a formula of ``e`` and ``D`` alone).
    bipartite:
        Whether the bounds came from the bipartite case.
    """

    lower: int
    upper: int
    exact: Optional[int]
    bipartite: bool


def terminates(graph: Graph, source: Node, max_rounds: Optional[int] = None) -> bool:
    """Whether AF from ``source`` terminates within its (generous) budget.

    Theorem 3.1 says this is always true; the function exists so the
    claim is *checked*, not assumed, throughout the experiments.
    """
    return simulate(graph, [source], max_rounds=max_rounds).terminated


def theoretical_bounds(graph: Graph, sources: Iterable[Node]) -> TerminationBounds:
    """The paper's termination bounds for AF from ``sources``.

    Raises
    ------
    DisconnectedGraphError
        If the graph is not connected -- the paper states its bounds for
        connected graphs (on a disconnected graph, apply per component).
    """
    if not is_connected(graph):
        raise DisconnectedGraphError(
            "the paper's termination bounds are stated for connected graphs"
        )
    source_list = list(sources)
    ecc = set_eccentricity(graph, source_list)
    if is_bipartite(graph):
        return TerminationBounds(lower=ecc, upper=ecc, exact=ecc, bipartite=True)
    d = diameter(graph)
    return TerminationBounds(
        lower=ecc, upper=2 * d + 1, exact=None, bipartite=False
    )


def oracle_round(graph: Graph, sources: Iterable[Node]) -> int:
    """The exact termination round, from the double-cover oracle."""
    return predict(graph, list(sources)).termination_round


def respects_bounds(graph: Graph, source: Node) -> bool:
    """Simulate AF from ``source`` and check it lands inside the bounds.

    This is the single-instance building block of the CL-L21 / CL-C22 /
    CL-T33 claim experiments.
    """
    bounds = theoretical_bounds(graph, [source])
    run = simulate(graph, [source])
    if not run.terminated:
        return False
    if bounds.exact is not None and run.termination_round != bounds.exact:
        return False
    return bounds.lower <= run.termination_round <= bounds.upper


def bipartite_exactness_gap(graph: Graph, source: Node) -> int:
    """``termination_round - e(source)``; zero on connected bipartite graphs.

    On non-bipartite graphs this measures how much the odd-cycle "echo"
    (the second message wave of the double cover) extends the process
    beyond plain BFS depth.
    """
    run = simulate(graph, [source])
    return run.termination_round - eccentricity(graph, source)
