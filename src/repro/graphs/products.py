"""Graph products: the algebra behind the double cover.

The bipartite double cover used by the oracle is the **tensor product**
``G x K2``.  This module provides the two classic products in general
form -- tensor (categorical) and Cartesian -- both because they
generate interesting flooding workloads (hypercubes are Cartesian
powers of K2; tori are Cartesian products of cycles) and because
``tensor_product(G, K2)`` gives an independent construction to check
:func:`repro.graphs.double_cover.double_cover` against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import Graph, Node

ProductNode = Tuple[Node, Node]


def tensor_product(g: Graph, h: Graph) -> Graph:
    """The tensor (categorical) product ``G x H``.

    ``(u1, v1) ~ (u2, v2)`` iff ``u1 ~ u2`` in G **and** ``v1 ~ v2`` in
    H.  Connectivity fact used by the oracle: for connected non-trivial
    G and H, ``G x H`` is connected iff G or H is non-bipartite; with
    ``H = K2`` this is exactly the double-cover dichotomy.
    """
    adjacency: Dict[ProductNode, List[ProductNode]] = {}
    for gu in g.nodes():
        for hv in h.nodes():
            adjacency[(gu, hv)] = [
                (gn, hn)
                for gn in g.neighbors(gu)
                for hn in h.neighbors(hv)
            ]
    return Graph(adjacency)


def cartesian_product(g: Graph, h: Graph) -> Graph:
    """The Cartesian product ``G □ H``.

    ``(u1, v1) ~ (u2, v2)`` iff (``u1 == u2`` and ``v1 ~ v2``) or
    (``u1 ~ u2`` and ``v1 == v2``).  ``K2 □ K2 □ ... □ K2`` is the
    hypercube; ``C_m □ C_n`` the torus.
    """
    adjacency: Dict[ProductNode, List[ProductNode]] = {}
    for gu in g.nodes():
        for hv in h.nodes():
            neighbours: List[ProductNode] = [
                (gu, hn) for hn in h.neighbors(hv)
            ]
            neighbours.extend((gn, hv) for gn in g.neighbors(gu))
            adjacency[(gu, hv)] = neighbours
    return Graph(adjacency)


def k2() -> Graph:
    """The single-edge graph on ``{0, 1}`` -- the cover's second factor."""
    return Graph.from_edges([(0, 1)])


def tensor_double_cover(graph: Graph) -> Graph:
    """``G x K2`` with nodes relabelled ``(node, parity)``.

    Structurally identical to
    :func:`repro.graphs.double_cover.double_cover`; built through the
    generic product so the two constructions can cross-check each
    other in the tests.
    """
    product = tensor_product(graph, k2())
    return product
