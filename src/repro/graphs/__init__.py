"""Graph substrate: the topology layer the flooding simulators run on.

Public surface:

* :class:`~repro.graphs.graph.Graph` -- immutable undirected simple graph.
* :mod:`~repro.graphs.generators` -- deterministic families (paths,
  cycles, cliques, grids, hypercubes, ...), including the exact
  instances from the paper's figures.
* :mod:`~repro.graphs.random_graphs` -- seeded random workloads.
* :mod:`~repro.graphs.properties` -- bipartiteness, components, girth.
* :mod:`~repro.graphs.traversal` -- BFS, eccentricity, diameter.
* :mod:`~repro.graphs.double_cover` -- the bipartite double cover used
  as the independent correctness oracle.
"""

from repro.graphs.graph import Graph, Node, Edge, degree_sequence, is_regular
from repro.graphs.generators import (
    barbell_graph,
    binary_tree,
    caterpillar_graph,
    circulant_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    cycle_with_chord,
    friendship_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    paper_even_cycle,
    paper_line,
    paper_triangle,
    path_graph,
    petersen_graph,
    star_graph,
    theta_graph,
    torus_graph,
    wheel_graph,
)
from repro.graphs.random_graphs import (
    barabasi_albert,
    erdos_renyi,
    random_bipartite,
    random_connected_graph,
    random_tree,
    watts_strogatz,
)
from repro.graphs.properties import (
    bipartition,
    connected_components,
    girth,
    graph_summary,
    is_bipartite,
    is_connected,
    is_tree,
    odd_girth,
    triangle_count,
)
from repro.graphs.traversal import (
    all_eccentricities,
    bfs_distances,
    bfs_layers,
    bfs_tree_edges,
    center,
    diameter,
    distance_matrix,
    eccentricity,
    multi_source_bfs_distances,
    periphery,
    radius,
    set_eccentricity,
    shortest_path,
)
from repro.graphs.products import (
    cartesian_product,
    k2,
    tensor_double_cover,
    tensor_product,
)
from repro.graphs.double_cover import (
    cover_distances,
    double_cover,
    predicted_message_complexity,
    predicted_receive_rounds,
    predicted_round_message_counts,
    predicted_termination_round,
    receives_exactly_once_everywhere,
)

__all__ = [
    "Graph",
    "Node",
    "Edge",
    "degree_sequence",
    "is_regular",
    # generators
    "barbell_graph",
    "binary_tree",
    "caterpillar_graph",
    "circulant_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "cycle_with_chord",
    "friendship_graph",
    "grid_graph",
    "hypercube_graph",
    "lollipop_graph",
    "paper_even_cycle",
    "paper_line",
    "paper_triangle",
    "path_graph",
    "petersen_graph",
    "star_graph",
    "theta_graph",
    "torus_graph",
    "wheel_graph",
    # random graphs
    "barabasi_albert",
    "erdos_renyi",
    "random_bipartite",
    "random_connected_graph",
    "random_tree",
    "watts_strogatz",
    # properties
    "bipartition",
    "connected_components",
    "girth",
    "graph_summary",
    "is_bipartite",
    "is_connected",
    "is_tree",
    "odd_girth",
    "triangle_count",
    # traversal
    "all_eccentricities",
    "bfs_distances",
    "bfs_layers",
    "bfs_tree_edges",
    "center",
    "diameter",
    "distance_matrix",
    "eccentricity",
    "multi_source_bfs_distances",
    "periphery",
    "radius",
    "set_eccentricity",
    "shortest_path",
    # products
    "cartesian_product",
    "k2",
    "tensor_double_cover",
    "tensor_product",
    # double cover oracle
    "cover_distances",
    "double_cover",
    "predicted_message_complexity",
    "predicted_receive_rounds",
    "predicted_round_message_counts",
    "predicted_termination_round",
    "receives_exactly_once_everywhere",
]
