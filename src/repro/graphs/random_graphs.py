"""Seeded random graph workload generators.

All generators take an explicit ``seed`` and route randomness through
``random.Random`` so workloads are exactly reproducible across runs and
machines.  Connectivity-sensitive generators offer a ``connected=True``
mode that retries (bounded) or patches the sample into connectivity,
because the paper's statements concern connected graphs.
"""

from __future__ import annotations

import random  # repro-lint: disable=REP003 -- topology generation, not execution: seeded random.Random per family builder, pinned by the generator tests
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import connected_components, is_connected


def _rng(seed: Optional[int]) -> random.Random:
    return random.Random(seed)


def _patch_connected(graph: Graph, rng: random.Random) -> Graph:
    """Join the components of ``graph`` with uniformly chosen bridge edges."""
    components = connected_components(graph)
    while len(components) > 1:
        first = sorted(components[0], key=repr)
        second = sorted(components[1], key=repr)
        graph = graph.with_edge(rng.choice(first), rng.choice(second))
        components = connected_components(graph)
    return graph


def erdos_renyi(
    n: int,
    p: float,
    seed: Optional[int] = None,
    connected: bool = False,
) -> Graph:
    """G(n, p): each of the C(n,2) edges present independently with prob. ``p``.

    With ``connected=True`` the sample is patched into connectivity by
    adding uniformly random bridge edges between components, which keeps
    the degree distribution essentially intact for the p regimes used in
    the experiment sweeps.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("erdos_renyi requires 0 <= p <= 1")
    if n < 1:
        raise ConfigurationError("erdos_renyi requires n >= 1")
    rng = _rng(seed)
    edges = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if rng.random() < p
    ]
    graph = Graph.from_edges(edges, isolated=range(n))
    if connected and not is_connected(graph):
        graph = _patch_connected(graph, rng)
    return graph


def random_tree(n: int, seed: Optional[int] = None) -> Graph:
    """A uniformly random labelled tree on ``n`` nodes via Prüfer sequences.

    Trees are the extreme bipartite case: amnesiac flooding on a tree is
    exactly BFS broadcast and each node receives the message once.
    """
    if n < 1:
        raise ConfigurationError("random_tree requires n >= 1")
    if n == 1:
        return Graph({0: []})
    if n == 2:
        return Graph.from_edges([(0, 1)])
    rng = _rng(seed)
    prufer = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for node in prufer:
        degree[node] += 1
    edges: List[Tuple[Node, Node]] = []
    import heapq

    leaves = [node for node in range(n) if degree[node] == 1]
    heapq.heapify(leaves)
    for node in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, node))
        degree[leaf] -= 1
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    last_two = [node for node in range(n) if degree[node] == 1]
    edges.append((last_two[0], last_two[1]))
    return Graph.from_edges(edges, isolated=range(n))


def random_bipartite(
    a: int,
    b: int,
    p: float,
    seed: Optional[int] = None,
    connected: bool = False,
) -> Graph:
    """A random bipartite graph with parts ``0..a-1`` and ``a..a+b-1``.

    Each of the ``a * b`` cross edges is present with probability ``p``.
    With ``connected=True``, bridge edges (always cross-part, preserving
    bipartiteness) are added until the graph is connected.
    """
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError("random_bipartite requires 0 <= p <= 1")
    if a < 1 or b < 1:
        raise ConfigurationError("random_bipartite requires a, b >= 1")
    rng = _rng(seed)
    edges = [
        (u, a + v)
        for u in range(a)
        for v in range(b)
        if rng.random() < p
    ]
    graph = Graph.from_edges(edges, isolated=range(a + b))
    if connected:
        while not is_connected(graph):
            components = connected_components(graph)
            # Pick one node from each side of the part boundary so the
            # bridge stays bipartite.
            left = [node for node in components[0] if node < a]
            right = [node for node in components[1] if node >= a]
            if not left or not right:
                left = [node for node in components[1] if node < a]
                right = [node for node in components[0] if node >= a]
            if not left or not right:
                # Both components live on the same side; connect through
                # any node of the opposite side in some other component.
                everything_left = [node for node in graph.nodes() if node < a]
                everything_right = [node for node in graph.nodes() if node >= a]
                graph = graph.with_edge(
                    rng.choice(everything_left), rng.choice(everything_right)
                )
                continue
            graph = graph.with_edge(rng.choice(left), rng.choice(right))
    return graph


def random_regular_even(n: int, degree: int, seed: Optional[int] = None) -> Graph:
    """An (approximately) random ``degree``-regular graph for even ``degree``.

    Uses the superposition of ``degree / 2`` random Hamiltonian cycles
    (distinct random circular permutations), which yields a connected
    ``degree``-regular multigraph whp; parallel/self edges are resampled
    a bounded number of times and any residue is dropped, so node degrees
    can occasionally be slightly below ``degree``.
    """
    if degree % 2 != 0 or degree < 2:
        raise ConfigurationError("random_regular_even requires an even degree >= 2")
    if n <= degree:
        raise ConfigurationError("random_regular_even requires n > degree")
    rng = _rng(seed)
    edges: set = set()
    for _ in range(degree // 2):
        for _attempt in range(50):
            order = list(range(n))
            rng.shuffle(order)
            cycle = {
                tuple(sorted((order[i], order[(i + 1) % n])))
                for i in range(n)
            }
            if not (cycle & edges):
                edges |= cycle
                break
        else:
            edges |= cycle - edges
    return Graph.from_edges(edges, isolated=range(n))


def watts_strogatz(
    n: int,
    k: int,
    beta: float,
    seed: Optional[int] = None,
) -> Graph:
    """A Watts–Strogatz small-world graph (ring lattice with rewiring).

    ``k`` must be even; each node starts joined to its ``k`` nearest ring
    neighbours and each lattice edge is rewired with probability ``beta``.
    """
    if k % 2 != 0 or k < 2:
        raise ConfigurationError("watts_strogatz requires an even k >= 2")
    if n <= k:
        raise ConfigurationError("watts_strogatz requires n > k")
    if not 0.0 <= beta <= 1.0:
        raise ConfigurationError("watts_strogatz requires 0 <= beta <= 1")
    rng = _rng(seed)
    edges = set()
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            edges.add(tuple(sorted((node, (node + offset) % n))))
    rewired = set(edges)
    for u, v in sorted(edges):
        if rng.random() < beta:
            candidates = [
                w for w in range(n)
                if w != u and tuple(sorted((u, w))) not in rewired
            ]
            if candidates:
                rewired.discard((u, v))
                rewired.add(tuple(sorted((u, rng.choice(candidates)))))
    return Graph.from_edges(rewired, isolated=range(n))


def barabasi_albert(n: int, attach: int, seed: Optional[int] = None) -> Graph:
    """A Barabási–Albert preferential-attachment graph.

    Starts from a star on ``attach + 1`` nodes; each new node attaches to
    ``attach`` distinct existing nodes chosen proportionally to degree.
    Always connected; models the social-network workloads the paper's
    introduction motivates (the "aggressive WhatsApp forwarder").
    """
    if attach < 1:
        raise ConfigurationError("barabasi_albert requires attach >= 1")
    if n <= attach:
        raise ConfigurationError("barabasi_albert requires n > attach")
    rng = _rng(seed)
    edges: List[Tuple[int, int]] = [(0, i) for i in range(1, attach + 1)]
    # The repeated-nodes list implements degree-proportional sampling.
    repeated: List[int] = [0] * attach + list(range(1, attach + 1))
    for new in range(attach + 1, n):
        targets: set = set()
        while len(targets) < attach:
            targets.add(rng.choice(repeated))
        for target in targets:
            edges.append((new, target))
            repeated.append(new)
            repeated.append(target)
    return Graph.from_edges(edges, isolated=range(n))


def random_connected_graph(
    n: int,
    extra_edge_prob: float = 0.15,
    seed: Optional[int] = None,
) -> Graph:
    """A random connected graph: random tree plus independent extra edges.

    This is the main hypothesis-style workload: every sample is connected
    by construction, and ``extra_edge_prob`` tunes how far from a tree
    (and how likely to contain odd cycles) the sample is.
    """
    if n < 1:
        raise ConfigurationError("random_connected_graph requires n >= 1")
    rng = _rng(seed)
    graph = random_tree(n, seed=rng.randrange(2**31))
    extra = [
        (u, v)
        for u in range(n)
        for v in range(u + 1, n)
        if not graph.has_edge(u, v) and rng.random() < extra_edge_prob
    ]
    adjacency = {node: list(graph.neighbors(node)) for node in graph.nodes()}
    for u, v in extra:
        adjacency[u].append(v)
    return Graph(adjacency)


RANDOM_FAMILY_BUILDERS = {
    "erdos_renyi": erdos_renyi,
    "random_tree": random_tree,
    "random_bipartite": random_bipartite,
    "watts_strogatz": watts_strogatz,
    "barabasi_albert": barabasi_albert,
    "random_connected": random_connected_graph,
}
"""Name -> builder registry used by the experiment workloads."""
