"""Serialization of graphs: edge lists, adjacency JSON and DOT.

The simulator is file-format agnostic; these helpers exist so that
experiment outputs (and the example scripts) can persist workloads and
so externally produced topologies can be replayed.
"""

from __future__ import annotations

import json
from typing import Dict, List, TextIO, Tuple

from repro.errors import GraphError
from repro.graphs.graph import Graph, Node


def to_edge_list(graph: Graph) -> str:
    """Render as whitespace-separated edge list, one ``u v`` pair per line.

    Isolated nodes are appended as single-token lines so the round trip
    preserves them.
    """
    lines = [f"{u} {v}" for u, v in graph.edges()]
    touched = {u for edge in graph.edges() for u in edge}
    lines.extend(str(node) for node in graph.nodes() if node not in touched)
    return "\n".join(lines)


def from_edge_list(text: str) -> Graph:
    """Parse the :func:`to_edge_list` format (node labels become strings).

    Integer-looking tokens are converted back to ``int`` so generated
    workloads round-trip exactly.
    """

    def _parse(token: str) -> Node:
        try:
            return int(token)
        except ValueError:
            return token

    edges: List[Tuple[Node, Node]] = []
    isolated: List[Node] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tokens = line.split()
        if len(tokens) == 1:
            isolated.append(_parse(tokens[0]))
        elif len(tokens) == 2:
            edges.append((_parse(tokens[0]), _parse(tokens[1])))
        else:
            raise GraphError(
                f"line {line_number}: expected 1 or 2 tokens, got {len(tokens)}"
            )
    return Graph.from_edges(edges, isolated=isolated)


def to_adjacency_json(graph: Graph) -> str:
    """Render as a JSON object ``{node: [neighbours...]}`` (labels stringified)."""
    payload: Dict[str, List[str]] = {
        str(node): sorted(str(n) for n in graph.neighbors(node))
        for node in graph.nodes()
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def from_adjacency_json(text: str) -> Graph:
    """Parse the :func:`to_adjacency_json` format (labels stay strings)."""
    payload = json.loads(text)
    if not isinstance(payload, dict):
        raise GraphError("adjacency JSON must be an object")
    return Graph({node: list(nbrs) for node, nbrs in payload.items()})


def to_dot(graph: Graph, name: str = "G", highlight: Tuple[Node, ...] = ()) -> str:
    """Render as GraphViz DOT; ``highlight`` nodes are drawn filled.

    Used by the figure reproductions to emit per-round snapshots in a
    format external tooling can draw.
    """
    highlighted = set(highlight)
    lines = [f"graph {json.dumps(name)} {{"]
    for node in graph.nodes():
        attrs = ' [style=filled, fillcolor=lightblue]' if node in highlighted else ""
        lines.append(f"  {json.dumps(str(node))}{attrs};")
    for u, v in graph.edges():
        lines.append(f"  {json.dumps(str(u))} -- {json.dumps(str(v))};")
    lines.append("}")
    return "\n".join(lines)


def write_graph(graph: Graph, stream: TextIO, fmt: str = "edgelist") -> None:
    """Write ``graph`` to ``stream`` in the named format.

    ``fmt`` is one of ``edgelist``, ``json`` or ``dot``.
    """
    renderers = {
        "edgelist": to_edge_list,
        "json": to_adjacency_json,
        "dot": to_dot,
    }
    if fmt not in renderers:
        raise GraphError(f"unknown graph format {fmt!r}")
    stream.write(renderers[fmt](graph))
    stream.write("\n")
