"""The bipartite double cover, the reproduction's independent oracle.

For a graph ``G = (V, E)`` the bipartite double cover (the tensor
product ``G x K2``) is the graph on ``V x {0, 1}`` with an edge between
``(u, p)`` and ``(w, 1 - p)`` for every ``{u, w}`` in ``E``.  It is
always bipartite (parity alternates along every edge) and it is
connected iff ``G`` is connected and non-bipartite; for bipartite ``G``
it consists of two disjoint copies of ``G``.

The authors' full version of the paper shows that amnesiac flooding on
``G`` from source ``v`` is step-for-step equivalent to breadth-first
flooding on the double cover from ``(v, 0)``:

* node ``u`` holds/receives the message at round ``r >= 1`` exactly when
  ``dist((v, 0), (u, r mod 2)) == r``;
* the process terminates after round ``ecc((v, 0))`` computed inside the
  component of ``(v, 0)``.

Because this prediction is computed by plain BFS on a *different* graph,
it shares no code path with the round-by-round simulator and serves as a
strong correctness oracle in the property tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph, Node
from repro.graphs.traversal import multi_source_bfs_distances

CoverNode = Tuple[Node, int]


def double_cover(graph: Graph) -> Graph:
    """Construct the bipartite double cover ``G x K2``.

    Nodes of the cover are ``(node, parity)`` tuples with parity in
    ``{0, 1}``.
    """
    adjacency: Dict[CoverNode, List[CoverNode]] = {}
    for node in graph.nodes():
        for parity in (0, 1):
            adjacency[(node, parity)] = [
                (neighbour, 1 - parity) for neighbour in graph.neighbors(node)
            ]
    return Graph(adjacency)


def cover_distances(
    graph: Graph, sources: Iterable[Node]
) -> Dict[CoverNode, int]:
    """BFS distances in the double cover from ``{(v, 0) : v in sources}``.

    Only reachable cover nodes appear in the result.  For a single
    source ``v`` on a connected bipartite graph exactly the copy
    containing ``(v, 0)`` is reached; on a connected non-bipartite graph
    both copies of every node are reached.
    """
    cover = double_cover(graph)
    cover_sources = [(source, 0) for source in sources]
    for source in sources:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
    return multi_source_bfs_distances(cover, cover_sources)


def predicted_receive_rounds(
    graph: Graph, sources: Iterable[Node]
) -> Dict[Node, Tuple[int, ...]]:
    """Oracle: the exact rounds at which each node receives the message.

    For every node ``u``, the receive rounds are the finite distances
    ``dist((u, 0))`` and ``dist((u, 1))`` that are at least 1 (distance
    0 is the source holding the message before round 1, not a receipt).
    The tuple is sorted ascending and may be empty (node unreachable),
    length 1 (bipartite case) or length 2 (non-bipartite case).
    """
    distances = cover_distances(graph, sources)
    result: Dict[Node, Tuple[int, ...]] = {}
    for node in graph.nodes():
        rounds = sorted(
            distances[(node, parity)]
            for parity in (0, 1)
            if (node, parity) in distances and distances[(node, parity)] >= 1
        )
        result[node] = tuple(rounds)
    return result


def predicted_termination_round(graph: Graph, sources: Iterable[Node]) -> int:
    """Oracle: the round after which no message crosses any edge.

    This is the eccentricity of the source set ``{(v, 0)}`` within its
    reachable part of the double cover: the last receipt happens at that
    round, and receivers of the last round have nobody left to forward
    to.  Round 0 means the sources have no neighbours at all.
    """
    distances = cover_distances(graph, list(sources))
    return max(distances.values()) if distances else 0


def predicted_message_complexity(graph: Graph, sources: Iterable[Node]) -> int:
    """Oracle: total number of point-to-point messages sent before termination.

    Amnesiac flooding sends the message across every *cover* edge
    reachable from the source set exactly once (in one direction): a
    node that receives at round ``r`` (cover node ``(u, r mod 2)``)
    forwards along each incident cover edge not just used.  Concretely,
    each cover edge ``{(u, p), (w, 1-p)}`` with both endpoints reachable
    carries exactly one message, in order of BFS level; edges with one
    reachable endpoint carry one message (into the dead end ... which is
    impossible in a cover: reachability spreads across edges), so the
    count is the number of cover edges with at least one endpoint
    reachable from the sources.

    Note: an edge of the cover with a reachable endpoint has both
    endpoints reachable (BFS crosses it), so this is simply the number
    of edges in the union of reachable components.
    """
    cover = double_cover(graph)
    distances = multi_source_bfs_distances(
        cover, [(source, 0) for source in sources]
    )
    reachable = set(distances)
    count = 0
    for u, v in cover.edges():
        if u in reachable or v in reachable:
            count += 1
    return count


def predicted_round_message_counts(
    graph: Graph, sources: Iterable[Node]
) -> List[int]:
    """Oracle: directed messages sent in each round, first round first.

    Every reachable cover edge carries the message exactly once, and --
    the cover being bipartite -- its endpoints always sit on adjacent
    BFS levels, so the edge is crossed at round ``max`` of its endpoint
    distances.  Counting cover edges by that crossing round therefore
    reproduces the simulator's ``round_edge_counts`` exactly, without
    running a single round.

    This is the explicit-cover twin of the CSR fast lane
    (:mod:`repro.fastpath.oracle_backend`); the two share no code and
    cross-check each other in the tests.
    """
    distances = cover_distances(graph, list(sources))
    horizon = max(distances.values()) if distances else 0
    counts = [0] * horizon
    for a, b in double_cover(graph).edges():
        da = distances.get(a)
        db = distances.get(b)
        if da is None or db is None:
            continue
        counts[max(da, db) - 1] += 1
    return counts


def receives_exactly_once_everywhere(graph: Graph, source: Node) -> bool:
    """Oracle predicate: every reachable node receives the message exactly once.

    Equivalent to the source's component being bipartite (on a
    non-bipartite component every node, including the source, receives
    twice -- except the source, which receives once, having *held* the
    message at round 0).  The paper's proposed topology-detection
    application rests on this equivalence.
    """
    rounds = predicted_receive_rounds(graph, [source])
    if rounds[source]:
        return False
    return all(
        len(r) == 1 for node, r in rounds.items() if node != source and r
    )
