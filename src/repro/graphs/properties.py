"""Structural graph properties used by the paper's bounds.

Bipartiteness is the pivotal property: Lemma 2.1 / Corollary 2.2 cover
bipartite graphs (termination in exactly the source's eccentricity,
hence at most the diameter) while Theorem 3.3 covers non-bipartite
graphs (termination by round 2D+1).  Odd girth quantifies *how*
non-bipartite a graph is and governs where in the (D, 2D+1] range the
observed termination time lands.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Set, Tuple

from repro.graphs.graph import Graph, Node


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Connected components, largest first (ties broken deterministically)."""
    remaining = set(graph.nodes())
    components: List[Set[Node]] = []
    while remaining:
        start = min(remaining, key=repr)
        component = {start}
        queue: deque = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in graph.neighbors(node):
                if neighbour not in component:
                    component.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
        remaining -= component
    components.sort(key=lambda c: (-len(c), repr(sorted(c, key=repr))))
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph has exactly one connected component.

    The empty graph is treated as connected (flooding on it is trivially
    terminated at round 0).
    """
    if graph.num_nodes == 0:
        return True
    return len(connected_components(graph)) == 1


def bipartition(graph: Graph) -> Optional[Tuple[Set[Node], Set[Node]]]:
    """A 2-colouring ``(part0, part1)`` if the graph is bipartite else ``None``.

    Works component-by-component via BFS parity colouring; the colouring
    of each component is anchored at its deterministic minimum node, so
    the returned partition is reproducible.
    """
    colour: Dict[Node, int] = {}
    for component in connected_components(graph):
        start = min(component, key=repr)
        colour[start] = 0
        queue: deque = deque([start])
        while queue:
            node = queue.popleft()
            for neighbour in graph.neighbors(node):
                if neighbour not in colour:
                    colour[neighbour] = 1 - colour[node]
                    queue.append(neighbour)
                elif colour[neighbour] == colour[node]:
                    return None
    part0 = {node for node, c in colour.items() if c == 0}
    part1 = {node for node, c in colour.items() if c == 1}
    return part0, part1


def is_bipartite(graph: Graph) -> bool:
    """Whether the graph admits a proper 2-colouring (no odd cycles)."""
    return bipartition(graph) is not None


def odd_girth(graph: Graph) -> Optional[int]:
    """Length of the shortest odd cycle, or ``None`` for bipartite graphs.

    Computed via BFS parity: the shortest odd closed walk through a BFS
    root has length ``d(u) + d(v) + 1`` minimised over same-layer edges
    ``{u, v}``; minimising over all roots yields the odd girth.  This is
    O(n * m) — fine at the simulator's scales.
    """
    best: Optional[int] = None
    for root in graph.nodes():
        distances: Dict[Node, int] = {root: 0}
        queue: deque = deque([root])
        while queue:
            node = queue.popleft()
            for neighbour in graph.neighbors(node):
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    queue.append(neighbour)
        for u, v in graph.edges():
            if u in distances and v in distances:
                if (distances[u] + distances[v]) % 2 == 0:
                    length = distances[u] + distances[v] + 1
                    if best is None or length < best:
                        best = length
    return best


def girth(graph: Graph) -> Optional[int]:
    """Length of the shortest cycle, or ``None`` for forests.

    Standard BFS-per-root cycle detection: the first non-tree edge
    closing a cycle through the root's BFS gives a candidate of length
    ``d(u) + d(v) + 1`` (cross edge) or ``d(u) + d(v) + 2`` is not needed
    because BFS from every root covers all shortest cycles.
    """
    best: Optional[int] = None
    for root in graph.nodes():
        distances: Dict[Node, int] = {root: 0}
        parent: Dict[Node, Optional[Node]] = {root: None}
        queue: deque = deque([root])
        while queue:
            node = queue.popleft()
            for neighbour in graph.neighbors(node):
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    parent[neighbour] = node
                    queue.append(neighbour)
                elif parent[node] != neighbour:
                    length = distances[node] + distances[neighbour] + 1
                    if best is None or length < best:
                        best = length
    return best


def is_tree(graph: Graph) -> bool:
    """Whether the graph is connected and acyclic."""
    return (
        is_connected(graph)
        and graph.num_edges == max(graph.num_nodes - 1, 0)
    )


def is_cycle_graph(graph: Graph) -> bool:
    """Whether the graph is a single simple cycle (every degree is 2)."""
    return (
        graph.num_nodes >= 3
        and is_connected(graph)
        and all(graph.degree(node) == 2 for node in graph.nodes())
    )


def triangle_count(graph: Graph) -> int:
    """Number of triangles (3-cliques) in the graph."""
    count = 0
    for u, v in graph.edges():
        count += len(graph.neighbors(u) & graph.neighbors(v))
    return count // 3


def graph_summary(graph: Graph) -> Dict[str, object]:
    """A property bundle used by reports and experiment logs.

    Diameter/radius are only included for connected graphs because the
    flooding process (and the paper's bounds) are stated per component.
    """
    from repro.graphs.traversal import diameter, radius

    summary: Dict[str, object] = {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "connected": is_connected(graph),
        "bipartite": is_bipartite(graph),
        "tree": is_tree(graph),
        "odd_girth": odd_girth(graph),
        "triangles": triangle_count(graph),
    }
    if summary["connected"] and graph.num_nodes > 0:
        summary["diameter"] = diameter(graph)
        summary["radius"] = radius(graph)
    return summary
