"""Deterministic graph families used throughout the reproduction.

These are the topologies the paper discusses directly (line, triangle,
even/odd cycles, cliques) plus the standard families used by the claim
sweeps (trees, grids, tori, hypercubes, wheels, barbells, theta graphs,
complete bipartite graphs).  All generators label nodes ``0..n-1``
unless documented otherwise and return :class:`repro.graphs.graph.Graph`.
"""

from __future__ import annotations

import itertools
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def path_graph(n: int) -> Graph:
    """The path (line) P_n on ``n`` nodes ``0 - 1 - ... - n-1``.

    Figure 1 of the paper uses P_4 with letter labels; see
    :func:`paper_line` for that exact instance.
    """
    _require(n >= 1, "path_graph requires n >= 1")
    return Graph.from_edges(
        ((i, i + 1) for i in range(n - 1)), isolated=range(n)
    )


def cycle_graph(n: int) -> Graph:
    """The cycle C_n on ``n >= 3`` nodes.

    Even cycles are bipartite (Figure 3 uses C_6); odd cycles are the
    canonical non-bipartite examples (Figure 2's triangle is C_3).
    """
    _require(n >= 3, "cycle_graph requires n >= 3")
    return Graph.from_edges((i, (i + 1) % n) for i in range(n))


def complete_graph(n: int) -> Graph:
    """The clique K_n.  K_3 is the paper's triangle."""
    _require(n >= 1, "complete_graph requires n >= 1")
    return Graph.from_edges(itertools.combinations(range(n), 2), isolated=range(n))


def star_graph(leaves: int) -> Graph:
    """A star with centre ``0`` and ``leaves`` leaves ``1..leaves``."""
    _require(leaves >= 0, "star_graph requires leaves >= 0")
    return Graph.from_edges(((0, i) for i in range(1, leaves + 1)), isolated=[0])


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """K_{a,b} with parts ``0..a-1`` and ``a..a+b-1``."""
    _require(a >= 1 and b >= 1, "complete_bipartite_graph requires a, b >= 1")
    return Graph.from_edges(
        ((i, a + j) for i in range(a) for j in range(b))
    )


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` grid; nodes are ``(r, c)`` tuples.

    Grids are bipartite, so amnesiac flooding behaves as a parallel BFS
    on them (Lemma 2.1).
    """
    _require(rows >= 1 and cols >= 1, "grid_graph requires rows, cols >= 1")
    edges: List[Tuple[Node, Node]] = []
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
    return Graph.from_edges(edges, isolated=((r, c) for r in range(rows) for c in range(cols)))


def torus_graph(rows: int, cols: int) -> Graph:
    """The ``rows x cols`` torus (grid with wraparound); nodes ``(r, c)``.

    Bipartite iff both dimensions are even.
    """
    _require(rows >= 3 and cols >= 3, "torus_graph requires rows, cols >= 3")
    edges: List[Tuple[Node, Node]] = []
    for r in range(rows):
        for c in range(cols):
            edges.append(((r, c), ((r + 1) % rows, c)))
            edges.append(((r, c), (r, (c + 1) % cols)))
    return Graph.from_edges(edges)


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube Q_d; nodes are ints ``0..2^d-1``.

    Hypercubes are bipartite with diameter ``d``.
    """
    _require(dimension >= 0, "hypercube_graph requires dimension >= 0")
    n = 1 << dimension
    edges = [
        (x, x ^ (1 << bit)) for x in range(n) for bit in range(dimension) if x < x ^ (1 << bit)
    ]
    return Graph.from_edges(edges, isolated=range(n))


def wheel_graph(rim: int) -> Graph:
    """A wheel: cycle C_rim (nodes ``1..rim``) plus hub ``0`` joined to all.

    Wheels are never bipartite (they contain triangles).
    """
    _require(rim >= 3, "wheel_graph requires rim >= 3")
    edges = [(i, i % rim + 1) for i in range(1, rim + 1)]
    edges.extend((0, i) for i in range(1, rim + 1))
    return Graph.from_edges(edges)


def binary_tree(height: int) -> Graph:
    """The complete binary tree of the given height (heap-indexed from 1)."""
    _require(height >= 0, "binary_tree requires height >= 0")
    n = (1 << (height + 1)) - 1
    edges = [(i, 2 * i) for i in range(1, n + 1) if 2 * i <= n]
    edges += [(i, 2 * i + 1) for i in range(1, n + 1) if 2 * i + 1 <= n]
    return Graph.from_edges(edges, isolated=range(1, n + 1))


def caterpillar_graph(spine: int, legs_per_node: int) -> Graph:
    """A caterpillar: a path of length ``spine`` with pendant legs.

    Spine nodes are ``0..spine-1``; leg ``j`` of spine node ``i`` is
    labelled ``spine + i * legs_per_node + j``.
    """
    _require(spine >= 1, "caterpillar_graph requires spine >= 1")
    _require(legs_per_node >= 0, "caterpillar_graph requires legs_per_node >= 0")
    edges = [(i, i + 1) for i in range(spine - 1)]
    for i in range(spine):
        for j in range(legs_per_node):
            edges.append((i, spine + i * legs_per_node + j))
    return Graph.from_edges(edges, isolated=range(spine))


def barbell_graph(clique_size: int, bridge_length: int) -> Graph:
    """Two K_{clique_size} cliques joined by a path of ``bridge_length`` edges.

    A classic high-diameter, locally dense topology: non-bipartite as
    soon as ``clique_size >= 3``.
    """
    _require(clique_size >= 2, "barbell_graph requires clique_size >= 2")
    _require(bridge_length >= 1, "barbell_graph requires bridge_length >= 1")
    k = clique_size
    left = list(itertools.combinations(range(k), 2))
    right_offset = k + bridge_length - 1
    right = [
        (right_offset + a, right_offset + b) for a, b in itertools.combinations(range(k), 2)
    ]
    bridge = [(k - 1 + i, k + i) for i in range(bridge_length)]
    return Graph.from_edges(left + bridge + right)


def lollipop_graph(clique_size: int, tail_length: int) -> Graph:
    """K_{clique_size} with a pendant path of ``tail_length`` edges."""
    _require(clique_size >= 2, "lollipop_graph requires clique_size >= 2")
    _require(tail_length >= 0, "lollipop_graph requires tail_length >= 0")
    k = clique_size
    edges = list(itertools.combinations(range(k), 2))
    edges.extend((k - 1 + i, k + i) for i in range(tail_length))
    return Graph.from_edges(edges)


def theta_graph(length_a: int, length_b: int, length_c: int) -> Graph:
    """Two terminals joined by three internally disjoint paths.

    The terminals are ``"s"`` and ``"t"``; internal path nodes are
    ``(path_index, position)`` tuples.  Theta graphs give fine control
    over odd/even cycle structure: the graph is bipartite iff all three
    path lengths share the same parity.
    """
    for length in (length_a, length_b, length_c):
        _require(length >= 1, "theta_graph path lengths must be >= 1")
    lengths = (length_a, length_b, length_c)
    _require(
        sorted(lengths)[:2] != [1, 1],
        "theta_graph needs at most one length-1 path (simple graph)",
    )
    edges: List[Tuple[Node, Node]] = []
    for index, length in enumerate(lengths):
        previous: Node = "s"
        for position in range(1, length):
            current: Node = (index, position)
            edges.append((previous, current))
            previous = current
        edges.append((previous, "t"))
    return Graph.from_edges(edges)


def circulant_graph(n: int, offsets: Sequence[int]) -> Graph:
    """The circulant C_n(offsets): node ``i`` joined to ``i +- o (mod n)``.

    Subsumes cycles (``offsets = [1]``) and gives fine control over the
    odd-cycle structure used in Theorem 3.3 sweeps: e.g. ``C_13(1, 5)``
    is 4-regular and non-bipartite, while ``C_8(2)`` splits into even
    components.  Offsets must be in ``1..n//2``.
    """
    _require(n >= 3, "circulant_graph requires n >= 3")
    _require(len(offsets) > 0, "circulant_graph requires at least one offset")
    for offset in offsets:
        _require(
            1 <= offset <= n // 2,
            "circulant offsets must lie within 1..n//2",
        )
    edges: List[Tuple[Node, Node]] = []
    for i in range(n):
        for offset in offsets:
            edges.append((i, (i + offset) % n))
    return Graph.from_edges(edges, isolated=range(n))


def petersen_graph() -> Graph:
    """The Petersen graph: 10 nodes, 15 edges, girth 5 (non-bipartite)."""
    outer = [(i, (i + 1) % 5) for i in range(5)]
    spokes = [(i, i + 5) for i in range(5)]
    inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    return Graph.from_edges(outer + spokes + inner)


def friendship_graph(triangles: int) -> Graph:
    """``triangles`` triangles sharing the single hub node ``0``."""
    _require(triangles >= 1, "friendship_graph requires triangles >= 1")
    edges: List[Tuple[Node, Node]] = []
    for t in range(triangles):
        u, v = 1 + 2 * t, 2 + 2 * t
        edges += [(0, u), (0, v), (u, v)]
    return Graph.from_edges(edges)


def cycle_with_chord(n: int, chord_from: int, chord_to: int) -> Graph:
    """C_n plus one chord; handy for building small non-bipartite cases."""
    graph = cycle_graph(n)
    _require(
        not graph.has_edge(chord_from, chord_to) and chord_from != chord_to,
        "chord must connect non-adjacent distinct nodes",
    )
    return graph.with_edge(chord_from, chord_to)


# ----------------------------------------------------------------------
# Exact instances from the paper's figures
# ----------------------------------------------------------------------


def paper_line() -> Graph:
    """Figure 1's line network ``a - b - c - d`` (letter labels)."""
    return Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d")])


def paper_triangle() -> Graph:
    """Figure 2 / Figure 5's triangle on ``a``, ``b``, ``c``."""
    return Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])


def paper_even_cycle() -> Graph:
    """Figure 3's six-cycle, labelled ``a..f`` in cyclic order."""
    labels = ["a", "b", "c", "d", "e", "f"]
    return Graph.from_edges(
        (labels[i], labels[(i + 1) % 6]) for i in range(6)
    )


FAMILY_BUILDERS = {
    "path": path_graph,
    "circulant": circulant_graph,
    "cycle": cycle_graph,
    "complete": complete_graph,
    "star": star_graph,
    "complete_bipartite": complete_bipartite_graph,
    "grid": grid_graph,
    "torus": torus_graph,
    "hypercube": hypercube_graph,
    "wheel": wheel_graph,
    "binary_tree": binary_tree,
    "caterpillar": caterpillar_graph,
    "barbell": barbell_graph,
    "lollipop": lollipop_graph,
    "theta": theta_graph,
    "petersen": petersen_graph,
    "friendship": friendship_graph,
}
"""Name -> builder registry used by the experiment workloads."""
