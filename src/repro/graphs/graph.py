"""A small, dependency-free undirected graph type.

The simulator operates on :class:`Graph`, an immutable undirected simple
graph stored as an adjacency map of frozen neighbour sets.  Keeping the
type immutable makes traces reproducible (a simulation can never mutate
its input topology) and makes graphs safely shareable between
experiments running in the same process.

``networkx`` is supported for interop (:meth:`Graph.from_networkx`,
:meth:`Graph.to_networkx`) but is never required at simulation time.

Nodes may be any hashable object; the generators in
:mod:`repro.graphs.generators` use ``int`` labels and the paper-figure
reproductions use the paper's letter labels (``"a"``, ``"b"``, ...).
"""

from __future__ import annotations

import hashlib
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Tuple,
)

from repro.errors import GraphError, NodeNotFoundError

Node = Hashable
Edge = Tuple[Node, Node]


def sort_nodes(nodes: Iterable[Node]) -> List[Node]:
    """Sort nodes deterministically: naturally when comparable, else by ``repr``.

    This is *the* node ordering of the package.  :meth:`Graph.nodes`,
    :meth:`Graph.edges`, the synchronous engine's neighbour lists and
    inbox iteration, and the fast-path CSR indexing all use it, so every
    layer agrees on what "deterministic order" means (``repr`` ordering
    alone would put the int node ``10`` before ``2``).
    """
    items = list(nodes)
    try:
        return sorted(items)  # type: ignore[type-var]
    except TypeError:
        return sorted(items, key=repr)


def _normalise_edge(u: Node, v: Node) -> Edge:
    """Return a canonical representation of the undirected edge ``{u, v}``.

    Uses a deterministic ordering that works for mixed node types by
    falling back to ``repr`` ordering when direct comparison fails.
    """
    try:
        return (u, v) if u <= v else (v, u)  # type: ignore[operator]
    except TypeError:
        return (u, v) if repr(u) <= repr(v) else (v, u)


class Graph:
    """An immutable undirected simple graph.

    Parameters
    ----------
    adjacency:
        Mapping from each node to an iterable of its neighbours.  The
        mapping must be symmetric-closed *or* merely edge-describing:
        any neighbour mentioned is added as a node and the reverse arc
        is inserted automatically, so ``Graph({0: [1]})`` and
        ``Graph({0: [1], 1: [0]})`` are the same graph.

    Raises
    ------
    GraphError
        If a self-loop is supplied (the model of the paper is a simple
        graph; a node never messages itself).
    """

    __slots__ = ("_adj", "_nodes", "_num_edges", "_hash", "_digest")

    def __init__(self, adjacency: Mapping[Node, Iterable[Node]]) -> None:
        working: Dict[Node, set] = {}
        for node, neighbours in adjacency.items():
            working.setdefault(node, set())
            for other in neighbours:
                if other == node:
                    raise GraphError(f"self-loop on node {node!r} is not allowed")
                working[node].add(other)
                working.setdefault(other, set()).add(node)
        self._adj: Dict[Node, FrozenSet[Node]] = {
            node: frozenset(nbrs) for node, nbrs in working.items()
        }
        self._nodes: Tuple[Node, ...] = tuple(self._sorted_nodes(self._adj))
        self._num_edges: int = sum(len(nbrs) for nbrs in self._adj.values()) // 2
        self._hash: int | None = None
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _sorted_nodes(adj: Mapping[Node, FrozenSet[Node]]) -> List[Node]:
        return sort_nodes(adj)

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Node, Node]],
        isolated: Iterable[Node] = (),
    ) -> "Graph":
        """Build a graph from an iterable of edges plus optional isolated nodes.

        >>> g = Graph.from_edges([(0, 1), (1, 2)])
        >>> sorted(g.neighbors(1))
        [0, 2]
        """
        adjacency: Dict[Node, List[Node]] = {node: [] for node in isolated}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, [])
        return cls(adjacency)

    @classmethod
    def from_networkx(cls, nx_graph: object) -> "Graph":
        """Convert a ``networkx.Graph`` into a :class:`Graph`.

        Requires ``networkx`` to be importable; raises :class:`GraphError`
        when given a directed or multi graph.
        """
        nodes = list(nx_graph.nodes())  # type: ignore[attr-defined]
        if getattr(nx_graph, "is_directed", lambda: False)():
            raise GraphError("expected an undirected networkx graph")
        edges = [(u, v) for u, v in nx_graph.edges() if u != v]  # type: ignore[attr-defined]
        return cls.from_edges(edges, isolated=nodes)

    def to_networkx(self) -> object:
        """Convert to a ``networkx.Graph`` (imports networkx lazily)."""
        import networkx as nx

        out = nx.Graph()
        out.add_nodes_from(self._nodes)
        out.add_edges_from(self.edges())
        return out

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``m``."""
        return self._num_edges

    def nodes(self) -> Tuple[Node, ...]:
        """All nodes in deterministic (sorted) order."""
        return self._nodes

    def edges(self) -> List[Edge]:
        """All undirected edges, each reported once, in deterministic order."""
        position = {node: index for index, node in enumerate(self._nodes)}
        result: List[Edge] = []
        for node in self._nodes:
            rank = position[node]
            for other in sort_nodes(self._adj[node]):
                if position[other] > rank:
                    result.append(_normalise_edge(node, other))
        return result

    def neighbors(self, node: Node) -> FrozenSet[Node]:
        """The neighbour set of ``node``.

        Raises :class:`NodeNotFoundError` for unknown nodes.
        """
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        """Degree of ``node``."""
        return len(self.neighbors(node))

    def has_node(self, node: Node) -> bool:
        """Whether ``node`` is in the graph."""
        return node in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the undirected edge ``{u, v}`` is in the graph."""
        return u in self._adj and v in self._adj[u]

    def adjacency(self) -> Dict[Node, FrozenSet[Node]]:
        """A shallow copy of the adjacency map (neighbour sets are frozen)."""
        return dict(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """The induced subgraph on ``keep`` (unknown nodes are an error)."""
        keep_set = set(keep)
        for node in keep_set:
            if node not in self._adj:
                raise NodeNotFoundError(node)
        return Graph(
            {node: [n for n in self._adj[node] if n in keep_set] for node in keep_set}
        )

    def relabel(self, mapping: Mapping[Node, Node]) -> "Graph":
        """A copy with nodes renamed through ``mapping``.

        Nodes absent from ``mapping`` keep their labels.  The mapping must
        be injective on the node set; collisions raise :class:`GraphError`.
        """
        new_names = {node: mapping.get(node, node) for node in self._nodes}
        if len(set(new_names.values())) != len(new_names):
            raise GraphError("relabel mapping is not injective on the node set")
        return Graph(
            {
                new_names[node]: [new_names[n] for n in self._adj[node]]
                for node in self._nodes
            }
        )

    def with_edge(self, u: Node, v: Node) -> "Graph":
        """A copy with the edge ``{u, v}`` added (nodes created if needed)."""
        adjacency = {node: list(nbrs) for node, nbrs in self._adj.items()}
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, [])
        return Graph(adjacency)

    def without_edge(self, u: Node, v: Node) -> "Graph":
        """A copy with the edge ``{u, v}`` removed (nodes retained)."""
        if not self.has_edge(u, v):
            from repro.errors import EdgeNotFoundError

            raise EdgeNotFoundError(u, v)
        adjacency = {
            node: [n for n in nbrs if not ({node, n} == {u, v})]
            for node, nbrs in self._adj.items()
        }
        return Graph(adjacency)

    def disjoint_union(self, other: "Graph") -> "Graph":
        """Disjoint union; nodes are tagged ``(0, node)`` / ``(1, node)``."""
        adjacency: Dict[Node, List[Node]] = {}
        for tag, graph in ((0, self), (1, other)):
            for node in graph.nodes():
                adjacency[(tag, node)] = [(tag, n) for n in graph.neighbors(node)]
        return Graph(adjacency)

    # ------------------------------------------------------------------
    # Equality / hashing / repr
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset((n, nbrs) for n, nbrs in self._adj.items()))
        return self._hash

    def content_digest(self) -> str:
        """A process-independent SHA-256 of the labelled structure.

        Unlike ``hash()`` (salted per interpreter for string labels),
        the digest is a pure function of the node and edge lists
        rendered through their ``repr``, so two processes building the
        same graph agree on it.  It is the graph half of
        :meth:`repro.api.spec.FloodSpec.digest` -- the key the
        content-addressed result cache (:mod:`repro.cache`) is built
        on -- and is memoised because under cached traffic it is
        recomputed per request; the memo is stripped from pickles with
        the hash below.
        """
        if self._digest is None:
            hasher = hashlib.sha256()
            for node in self._nodes:
                hasher.update(repr(node).encode("utf-8"))
                hasher.update(b";")
            hasher.update(b"|")
            for u, v in self.edges():
                hasher.update(f"{u!r}-{v!r}".encode("utf-8"))
                hasher.update(b";")
            self._digest = hasher.hexdigest()
        return self._digest

    # Pickling: drop the memoised hash and content digest.  Python
    # salts string hashing per process, so a cached hash computed here
    # is wrong in a worker that unpickles the graph (and carrying
    # either memo would also make the pickled payload depend on whether
    # the graph was ever used as a dict key or cache key).  Both slots
    # rebuild lazily on first use.

    def __getstate__(self) -> Tuple[Dict[Node, FrozenSet[Node]], Tuple[Node, ...], int]:
        return (self._adj, self._nodes, self._num_edges)

    def __setstate__(self, state) -> None:
        self._adj, self._nodes, self._num_edges = state
        self._hash = None
        self._digest = None

    def __repr__(self) -> str:
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    def describe(self) -> str:
        """A short human-readable description used by reports."""
        return f"graph with {self.num_nodes} nodes and {self.num_edges} edges"


def degree_sequence(graph: Graph) -> List[int]:
    """The sorted (descending) degree sequence of ``graph``."""
    return sorted((graph.degree(node) for node in graph.nodes()), reverse=True)


def is_regular(graph: Graph) -> bool:
    """Whether every node has the same degree (vacuously true when empty)."""
    degrees = {graph.degree(node) for node in graph.nodes()}
    return len(degrees) <= 1


def edge_list_string(graph: Graph) -> str:
    """Render the edge list as one ``u -- v`` pair per line."""
    return "\n".join(f"{u} -- {v}" for u, v in graph.edges())
