"""Breadth-first traversal primitives.

These are the distance computations every theoretical bound in the paper
rests on: eccentricity (Lemma 2.1), diameter (Corollary 2.2, Theorem 3.3)
and the BFS layering that amnesiac flooding reduces to on bipartite
graphs.  Multi-source BFS supports the multi-source extension and the
double-cover oracle.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.graphs.graph import Graph, Node

INFINITY = float("inf")


def bfs_distances(graph: Graph, source: Node) -> Dict[Node, int]:
    """Hop distances from ``source`` to every node reachable from it.

    Unreachable nodes are absent from the result (callers treat absence
    as infinite distance).
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    return multi_source_bfs_distances(graph, [source])


def multi_source_bfs_distances(
    graph: Graph, sources: Iterable[Node]
) -> Dict[Node, int]:
    """Hop distances from the nearest of ``sources`` (set-BFS).

    The frontier starts with every source at distance 0; this is the
    traversal that multi-source amnesiac flooding performs on bipartite
    graphs and that the double-cover oracle uses in general.
    """
    distances: Dict[Node, int] = {}
    queue: deque = deque()
    for source in sources:
        if not graph.has_node(source):
            raise NodeNotFoundError(source)
        if source not in distances:
            distances[source] = 0
            queue.append(source)
    while queue:
        node = queue.popleft()
        next_distance = distances[node] + 1
        for neighbour in graph.neighbors(node):
            if neighbour not in distances:
                distances[neighbour] = next_distance
                queue.append(neighbour)
    return distances


def bfs_layers(graph: Graph, source: Node) -> List[Set[Node]]:
    """Nodes grouped by distance from ``source``: ``layers[i]`` = distance-i set.

    On a connected bipartite graph these layers are exactly the round-sets
    of amnesiac flooding (Lemma 2.1's parallel BFS).
    """
    distances = bfs_distances(graph, source)
    if not distances:
        return []
    depth = max(distances.values())
    layers: List[Set[Node]] = [set() for _ in range(depth + 1)]
    for node, distance in distances.items():
        layers[distance].add(node)
    return layers


def bfs_tree_edges(graph: Graph, source: Node) -> List[Tuple[Node, Node]]:
    """Parent->child edges of a deterministic BFS tree rooted at ``source``.

    Children are visited in the graph's deterministic node order, so the
    tree is reproducible.  Used by the BFS-broadcast baseline's spanning
    tree construction.
    """
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    visited = {source}
    queue: deque = deque([source])
    edges: List[Tuple[Node, Node]] = []
    while queue:
        node = queue.popleft()
        neighbours = sorted(graph.neighbors(node), key=repr)
        for neighbour in neighbours:
            if neighbour not in visited:
                visited.add(neighbour)
                edges.append((node, neighbour))
                queue.append(neighbour)
    return edges


def eccentricity(graph: Graph, node: Node) -> int:
    """Greatest distance from ``node`` to any node in its component.

    Lemma 2.1: on a connected bipartite graph, amnesiac flooding from
    ``a`` terminates in exactly ``eccentricity(graph, a)`` rounds.
    """
    distances = bfs_distances(graph, node)
    return max(distances.values()) if distances else 0


def all_eccentricities(graph: Graph) -> Dict[Node, int]:
    """Eccentricity of every node (per connected component)."""
    return {node: eccentricity(graph, node) for node in graph.nodes()}


def diameter(graph: Graph) -> int:
    """The largest eccentricity over all nodes.

    For a disconnected graph this is the largest *within-component*
    eccentricity (distances across components are undefined for the
    flooding process, which never crosses components).
    """
    if graph.num_nodes == 0:
        return 0
    return max(all_eccentricities(graph).values())


def radius(graph: Graph) -> int:
    """The smallest eccentricity over all nodes."""
    if graph.num_nodes == 0:
        return 0
    return min(all_eccentricities(graph).values())


def center(graph: Graph) -> List[Node]:
    """Nodes whose eccentricity equals the radius."""
    if graph.num_nodes == 0:
        return []
    eccentricities = all_eccentricities(graph)
    r = min(eccentricities.values())
    return [node for node, value in eccentricities.items() if value == r]


def periphery(graph: Graph) -> List[Node]:
    """Nodes whose eccentricity equals the diameter."""
    if graph.num_nodes == 0:
        return []
    eccentricities = all_eccentricities(graph)
    d = max(eccentricities.values())
    return [node for node, value in eccentricities.items() if value == d]


def set_eccentricity(graph: Graph, sources: Iterable[Node]) -> int:
    """Greatest distance from the *set* ``sources`` to any reachable node.

    This is ``e(I)`` in the multi-source termination bound of the
    authors' full paper.
    """
    distances = multi_source_bfs_distances(graph, sources)
    return max(distances.values()) if distances else 0


def shortest_path(graph: Graph, source: Node, target: Node) -> Optional[List[Node]]:
    """One shortest path from ``source`` to ``target`` or ``None`` if separated."""
    if not graph.has_node(target):
        raise NodeNotFoundError(target)
    parents: Dict[Node, Optional[Node]] = {source: None}
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    queue: deque = deque([source])
    while queue:
        node = queue.popleft()
        if node == target:
            path = [node]
            while parents[path[-1]] is not None:
                path.append(parents[path[-1]])
            return list(reversed(path))
        for neighbour in sorted(graph.neighbors(node), key=repr):
            if neighbour not in parents:
                parents[neighbour] = node
                queue.append(neighbour)
    return None


def distance_matrix(graph: Graph) -> Dict[Node, Dict[Node, int]]:
    """All-pairs hop distances (per component); absent pairs are unreachable."""
    return {node: bfs_distances(graph, node) for node in graph.nodes()}
