"""Fairness and bounded-delay analysis of asynchronous schedules.

The paper's non-termination adversary is only interesting if its
schedule is *fair* -- an adversary that simply never delivers a message
trivially "prevents termination".  This module makes the fairness
discussion precise:

* :func:`audit_schedule` replays a run and reports, for every message,
  how many steps it spent in transit (its *hold time*);
* a schedule is **B-bounded** when no message is held more than ``B``
  steps;
* :class:`BoundedDelayAdversary` wraps any strategy and force-delivers
  messages about to exceed the bound, producing only B-bounded
  schedules by construction.

Key fact the tests verify: the Figure 5 adversary already produces a
**1-bounded** schedule -- the weakest possible asynchrony (every
message delayed at most one extra step) still defeats termination, so
there is no delay-bound refuge between synchrony and non-termination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.asynchrony.adversary import Adversary
from repro.asynchrony.configurations import Configuration, DirectedMessage
from repro.asynchrony.engine import AsyncRun


@dataclass
class ScheduleAudit:
    """Hold-time accounting of one (finite prefix of an) async run.

    ``max_hold`` is the longest any message waited before delivery;
    ``holds_per_step[i]`` the number of held messages at step ``i``;
    ``undelivered_at_end`` messages still in transit when the recorded
    prefix ended (with their current ages).
    """

    max_hold: int
    total_holds: int
    holds_per_step: List[int] = field(default_factory=list)
    undelivered_at_end: Dict[DirectedMessage, int] = field(default_factory=dict)

    def is_bounded(self, bound: int) -> bool:
        """Whether the audited prefix is ``bound``-bounded."""
        pending_ok = all(age <= bound for age in self.undelivered_at_end.values())
        return self.max_hold <= bound and pending_ok


def audit_schedule(run: AsyncRun) -> ScheduleAudit:
    """Replay a recorded run's deliveries and account message ages.

    A message's identity is (directed edge, birth step); a forward onto
    an edge whose previous message is still pending merges with it in
    the configuration -- the audit keeps the *older* birth, which makes
    reported hold times conservative (never understated).
    """
    ages: Dict[DirectedMessage, int] = {m: 0 for m in run.configurations[0]}
    max_hold = 0
    total_holds = 0
    holds_per_step: List[int] = []

    for step, batch in enumerate(run.deliveries):
        next_config = run.configurations[step + 1]
        survivors = {}
        held = 0
        for message in next_config:
            if message in ages and message not in batch:
                survivors[message] = ages[message] + 1
                held += 1
                max_hold = max(max_hold, survivors[message])
            else:
                survivors[message] = 0
        total_holds += held
        holds_per_step.append(held)
        ages = survivors

    return ScheduleAudit(
        max_hold=max_hold,
        total_holds=total_holds,
        holds_per_step=holds_per_step,
        undelivered_at_end=dict(ages),
    )


class BoundedDelayAdversary:
    """Wrap a strategy so no message is ever held more than ``bound`` steps.

    Tracks per-message ages and adds any message at the bound to the
    wrapped strategy's delivery batch.  The result is B-bounded by
    construction, modelling partially synchronous networks with a known
    delay cap.
    """

    def __init__(self, inner: Adversary, bound: int) -> None:
        if bound < 0:
            raise ConfigurationError("bound must be >= 0")
        self.inner = inner
        self.bound = bound
        self._ages: Dict[DirectedMessage, int] = {}

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        # age bookkeeping for messages we have seen before
        self._ages = {
            message: self._ages.get(message, 0) for message in configuration
        }
        batch = set(self.inner.choose(configuration, step))
        forced = {
            message
            for message, age in self._ages.items()
            if age >= self.bound and message in configuration
        }
        batch |= forced
        if configuration and not batch:
            batch = {min(configuration, key=repr)}
        for message in configuration:
            if message in batch:
                self._ages.pop(message, None)
            else:
                self._ages[message] = self._ages.get(message, 0) + 1
        return frozenset(batch)


def minimal_breaking_bound(
    graph: Graph,
    source: Node,
    strategy_factory,
    max_bound: int = 5,
    max_steps: Optional[int] = None,
) -> Optional[int]:
    """Smallest delay bound at which the strategy still forces a loop.

    Runs the wrapped strategy at bounds ``0..max_bound``; returns the
    first bound whose run certifies a configuration cycle, or ``None``
    when even ``max_bound`` fails.  Bound 0 is synchrony -- Theorem 3.1
    says it always terminates, so any return value is >= 1.
    ``max_steps=None`` resolves to the graph-scaled
    :func:`~repro.sync.engine.default_step_budget` inside the engine.
    """
    from repro.asynchrony.engine import AsyncOutcome, run_async

    for bound in range(max_bound + 1):
        adversary = BoundedDelayAdversary(strategy_factory(), bound)
        run = run_async(graph, [source], adversary, max_steps=max_steps)
        if run.outcome is AsyncOutcome.CYCLE_DETECTED:
            return bound
    return None
