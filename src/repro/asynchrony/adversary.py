"""Scheduling adversaries for asynchronous amnesiac flooding.

An adversary is a strategy choosing, at each step, which in-transit
messages to deliver and which to delay.  The paper's Section 4 claims a
scheduling adversary "can always ensure non-termination"; we implement:

* :class:`SynchronousAdversary` -- delivers everything; equals the
  synchronous process (used as a cross-check and as the fairness
  baseline that *does* terminate).
* :class:`ConvergecastHoldAdversary` -- the Figure 5 strategy,
  generalised from the triangle to any graph: whenever the wavefronts
  converge (several messages aimed at a single node), deliver one and
  hold the rest for one step.  On odd cycles this provably recreates an
  earlier configuration, looping forever while holding each message at
  most one step (a *fair* schedule).
* :class:`RandomDelayAdversary` -- each message independently delayed
  with probability ``p`` (non-adversarial asynchrony; empirically this
  almost always terminates, sharpening the contrast with the adaptive
  adversary).  Draws from a sequential seeded stream, so it is bound to
  one trial at a time.
* :class:`CounterDelayAdversary` -- the same random-delay model with
  counter-based coordinates instead of a sequential stream: every
  hold/deliver decision is ``slot_draw(round_key(run_key, step),
  arc_slot)``, the exact draws the fast-path ``random_delay`` stepper
  consumes, making reference and fast runs bit-identical per
  ``(seed, stream)``.
* :class:`FixedScheduleAdversary` -- replays an explicit schedule, used
  to execute certificates found by the searching adversary.
"""

from __future__ import annotations

import random  # repro-lint: disable=REP003 -- adversary schedule streams: seeded per instance and sequential by design (the adversary owns one trial); cross-trial keys are counter-derived by callers
from typing import TYPE_CHECKING, FrozenSet, Optional, Protocol, Sequence, Set

from repro.errors import ConfigurationError
from repro.asynchrony.configurations import Configuration, DirectedMessage
from repro.rng import round_key, slot_draw, survival_threshold

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.fastpath.indexed import IndexedGraph


class Adversary(Protocol):
    """Strategy interface: split the in-transit set into deliver/hold.

    Implementations must return a non-empty ``deliver`` subset whenever
    the configuration is non-empty (time must progress).  A strategy
    that depends only on ``configuration`` (not ``step``) is
    *memoryless*; repeated configurations under memoryless strategies
    certify non-termination.
    """

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        """The batch of messages to deliver at this step."""
        ...


class SynchronousAdversary:
    """Deliver every in-transit message immediately.

    Under this schedule the asynchronous engine executes the exact
    synchronous process, providing an end-to-end consistency check
    between the two engines.
    """

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        return configuration


class ConvergecastHoldAdversary:
    """The Figure 5 strategy: break up converging wavefronts.

    When every in-transit message targets one common node (the flood's
    two wavefronts meeting, which is where synchronous AF would die
    out), deliver only the deterministically-first message and hold the
    rest one step.  The receiver then echoes the message back towards
    the held wavefront, re-creating an earlier configuration.

    On the triangle this reproduces the paper's Figure 5 schedule
    verbatim; on every odd cycle it yields a configuration cycle (the
    CL-S4 experiment checks C3 through C11).  Each message is held at
    most one consecutive step, so the resulting infinite schedule is
    fair.
    """

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return configuration
        targets = {receiver for _, receiver in configuration}
        if len(targets) == 1 and len(configuration) > 1:
            first = min(configuration, key=repr)
            return frozenset({first})
        return configuration


class RandomDelayAdversary:
    """Oblivious random delays: hold each message with probability ``p``.

    At least one message is always delivered (a uniformly chosen one if
    the coin flips held everything), keeping the schedule progressing.
    """

    def __init__(self, delay_probability: float, seed: Optional[int] = None) -> None:
        if not 0.0 <= delay_probability < 1.0:
            raise ConfigurationError("delay_probability must be in [0, 1)")
        self.delay_probability = delay_probability
        self._rng = random.Random(seed)

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return configuration
        deliver = {
            message
            for message in sorted(configuration, key=repr)
            if self._rng.random() >= self.delay_probability
        }
        if not deliver:
            deliver = {self._rng.choice(sorted(configuration, key=repr))}
        return frozenset(deliver)


class CounterDelayAdversary:
    """Random delays drawn from counter-based per-(step, arc) coordinates.

    The same oblivious model as :class:`RandomDelayAdversary` --
    independently hold each in-transit message with probability ``p``,
    delivering at least one so time progresses -- but every decision is
    a pure function of ``(run_key, step, arc slot)`` through
    :func:`repro.rng.slot_draw`, with no sequential stream.  These are
    exactly the draws the fast-path ``random_delay`` stepper
    (:mod:`repro.fastpath.variants`) consumes, so an async reference
    run under this adversary is bit-identical to the fast run with the
    same ``run_key``.  Hold iff the draw falls below
    ``survival_threshold(p)``; the all-held fallback delivers the
    single message minimising ``(draw, slot)``.
    """

    def __init__(
        self,
        delay_probability: float,
        run_key: int,
        index: "IndexedGraph",
    ) -> None:
        if not 0.0 <= delay_probability < 1.0:
            raise ConfigurationError("delay_probability must be in [0, 1)")
        self.delay_probability = delay_probability
        self.run_key = run_key
        self.index = index
        self._threshold = survival_threshold(delay_probability)

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return configuration
        rkey = round_key(self.run_key, step)
        arc_slot = self.index.arc_slot
        threshold = self._threshold
        deliver = frozenset(
            message  # repro-lint: disable=REP002 -- per-message draws are order-free (keyed by arc slot, not iteration position)
            for message in configuration
            if slot_draw(rkey, arc_slot(*message)) >= threshold
        )
        if deliver:
            return deliver
        slots = {
            arc_slot(*message): message  # repro-lint: disable=REP002 -- dict keyed by unique arc slot; min below is order-free
            for message in configuration
        }
        best_slot = min(
            slots, key=lambda slot: (slot_draw(rkey, slot), slot)
        )
        return frozenset({slots[best_slot]})


class FixedScheduleAdversary:
    """Replay an explicit list of delivery batches, then deliver all.

    Used to execute lasso certificates: the stem-plus-cycle schedule is
    passed in and repeated from ``loop_from`` once exhausted.
    """

    def __init__(
        self,
        schedule: Sequence[FrozenSet[DirectedMessage]],
        loop_from: Optional[int] = None,
    ) -> None:
        if loop_from is not None and not 0 <= loop_from < len(schedule):
            raise ConfigurationError("loop_from must index into the schedule")
        self.schedule = [frozenset(batch) for batch in schedule]
        self.loop_from = loop_from

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        index = step - 1
        if index < len(self.schedule):
            return self.schedule[index]
        if self.loop_from is None:
            return configuration
        cycle_length = len(self.schedule) - self.loop_from
        return self.schedule[
            self.loop_from + (index - len(self.schedule)) % cycle_length
        ]


class HoldEdgeAdversary:
    """Persistently delay messages on the given directed edges by one step.

    A simple targeted strategy used in tests: messages crossing a
    watched edge are held for one step whenever anything else can make
    progress, then released.
    """

    def __init__(self, watched: Sequence[DirectedMessage]) -> None:
        self.watched: Set[DirectedMessage] = set(watched)

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        deliver = frozenset(m for m in configuration if m not in self.watched)
        if deliver:
            return deliver
        return configuration
