"""Asynchronous amnesiac flooding (Section 4 of the paper).

The synchronous process provably terminates; this subpackage shows the
asynchronous variant does not have to.  It provides the configuration
model, a strategy interface for scheduling adversaries (including the
Figure 5 strategy), an execution engine that extracts non-termination
certificates, and an exhaustive schedule search that *decides*
adversarial non-termination on small topologies.
"""

from repro.asynchrony.adversary import (
    Adversary,
    ConvergecastHoldAdversary,
    CounterDelayAdversary,
    FixedScheduleAdversary,
    HoldEdgeAdversary,
    RandomDelayAdversary,
    SynchronousAdversary,
)
from repro.asynchrony.configurations import (
    Configuration,
    DirectedMessage,
    EMPTY_CONFIGURATION,
    Lasso,
    apply_delivery,
    initial_configuration,
    synchronous_closure,
)
from repro.asynchrony.fairness import (
    BoundedDelayAdversary,
    ScheduleAudit,
    audit_schedule,
    minimal_breaking_bound,
)
from repro.asynchrony.engine import (
    AsyncOutcome,
    AsyncRun,
    run_async,
    synchronous_async_equivalence,
)
from repro.asynchrony.strategies import (
    GreedyDamageAdversary,
    OldestFirstAdversary,
    RoundRobinEdgeAdversary,
    StarveNodeAdversary,
)
from repro.asynchrony.search import (
    adversary_can_win,
    delivery_choices,
    find_nonterminating_schedule,
)

__all__ = [
    "Adversary",
    "ConvergecastHoldAdversary",
    "CounterDelayAdversary",
    "FixedScheduleAdversary",
    "HoldEdgeAdversary",
    "RandomDelayAdversary",
    "SynchronousAdversary",
    "Configuration",
    "DirectedMessage",
    "EMPTY_CONFIGURATION",
    "Lasso",
    "apply_delivery",
    "initial_configuration",
    "synchronous_closure",
    "BoundedDelayAdversary",
    "ScheduleAudit",
    "audit_schedule",
    "minimal_breaking_bound",
    "AsyncOutcome",
    "AsyncRun",
    "run_async",
    "synchronous_async_equivalence",
    "GreedyDamageAdversary",
    "OldestFirstAdversary",
    "RoundRobinEdgeAdversary",
    "StarveNodeAdversary",
    "adversary_can_win",
    "delivery_choices",
    "find_nonterminating_schedule",
]
