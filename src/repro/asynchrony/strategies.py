"""Additional adversary strategies for the asynchronous experiments.

:mod:`repro.asynchrony.adversary` carries the paper-aligned strategies
(synchronous, the Figure 5 convergecast-hold, random).  This module
adds scheduling policies from the systems side of the literature --
age-ordered delivery, node starvation, greedy damage maximisation --
to chart how *policy* (not just adversarial intent) interacts with
termination.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.asynchrony.configurations import (
    Configuration,
    DirectedMessage,
    apply_delivery,
)


class OldestFirstAdversary:
    """Deliver only the longest-waiting message(s) each step.

    A serialising scheduler: every step delivers the single oldest
    message (deterministic tie-break).  Models a fully sequential
    network where no two deliveries ever coincide.  Note: sequential
    delivery dismantles the batch-complement rule -- each receipt is
    answered in isolation -- so floods behave like token walks.
    """

    def __init__(self) -> None:
        self._ages: Dict[DirectedMessage, int] = {}

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return frozenset()
        self._ages = {
            message: self._ages.get(message, 0) + 1 for message in configuration
        }
        oldest_age = max(self._ages[m] for m in configuration)
        candidates = sorted(
            (m for m in configuration if self._ages[m] == oldest_age), key=repr
        )
        chosen = candidates[0]
        self._ages.pop(chosen, None)
        return frozenset({chosen})


class StarveNodeAdversary:
    """Delay every message addressed to one victim node when possible.

    Messages towards ``victim`` are held whenever some other message
    can progress; they are released only when they are all that is
    left.  Tests whether targeted unfairness (rather than global
    reordering) threatens termination.
    """

    def __init__(self, victim: Node) -> None:
        self.victim = victim

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        others = frozenset(
            m for m in configuration if m[1] != self.victim
        )
        return others if others else configuration


class GreedyDamageAdversary:
    """Pick the delivery batch whose successor configuration is largest.

    A bounded lookahead-1 adversary: enumerates up to
    ``max_batch_choices`` candidate batches and plays the one producing
    the most in-transit messages next step (ties broken towards later
    enumeration order staying deterministic).  Greedy damage is a
    natural heuristic opponent to compare with the exhaustive search:
    it often finds loops without any search at all.
    """

    def __init__(self, graph: Graph, max_batch_choices: int = 64) -> None:
        if max_batch_choices < 1:
            raise ConfigurationError("max_batch_choices must be >= 1")
        self.graph = graph
        self.max_batch_choices = max_batch_choices

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return frozenset()
        from repro.asynchrony.search import delivery_choices

        best: Optional[FrozenSet[DirectedMessage]] = None
        best_size = -1
        for batch in delivery_choices(configuration, self.max_batch_choices):
            successor = apply_delivery(self.graph, configuration, batch)
            if len(successor) > best_size:
                best = batch
                best_size = len(successor)
        assert best is not None  # configuration non-empty => some batch exists
        return best


class RoundRobinEdgeAdversary:
    """Serve directed edges in a fixed rotating order, one per step.

    Another serialising policy, but keyed to edges rather than message
    ages: conceptually a TDMA-style link schedule.  Deterministic and
    memoryless given the step number, so configuration repeats under it
    certify non-termination.
    """

    def __init__(self, graph: Graph) -> None:
        order = []
        for u, v in graph.edges():
            order.append((u, v))
            order.append((v, u))
        self._order: Tuple[DirectedMessage, ...] = tuple(
            sorted(order, key=repr)
        )
        if not self._order:
            raise ConfigurationError("graph has no edges to schedule")

    def choose(
        self, configuration: Configuration, step: int
    ) -> FrozenSet[DirectedMessage]:
        if not configuration:
            return frozenset()
        start = (step - 1) % len(self._order)
        for offset in range(len(self._order)):
            candidate = self._order[(start + offset) % len(self._order)]
            if candidate in configuration:
                return frozenset({candidate})
        return configuration
