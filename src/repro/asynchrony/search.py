"""Exhaustive search for non-terminating asynchronous schedules.

The paper asserts an adaptive adversary "can always ensure
non-termination".  For small graphs we can *decide* whether such a
schedule exists: the configuration space of asynchronous amnesiac
flooding is finite (subsets of directed edges), and the adversary wins
iff some configuration reachable from the initial one lies on a cycle
of the reachability graph whose moves it controls.

:func:`find_nonterminating_schedule` performs a depth-first search over
(configuration, chosen-batch) successors and returns an explicit
:class:`~repro.asynchrony.configurations.Lasso` certificate, or ``None``
when *every* schedule terminates (as happens on trees -- messages only
ever move away from the source, so no adversary can loop).

The search is exponential in the number of simultaneously in-transit
messages; guard rails (``max_configurations``, ``max_batch_choices``)
keep it usable on the small topologies the experiments probe.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.asynchrony.configurations import (
    Configuration,
    DirectedMessage,
    Lasso,
    apply_delivery,
    initial_configuration,
)


def delivery_choices(
    configuration: Configuration, max_batch_choices: Optional[int] = None
) -> List[FrozenSet[DirectedMessage]]:
    """All legal delivery batches: non-empty subsets of the configuration.

    Enumerated in a deterministic order, largest batches first -- the
    synchronous choice is explored first so terminating branches are
    found quickly and the search spends its budget on near-synchronous
    deviations (which is where Figure 5's schedule lives).
    """
    messages = sorted(configuration, key=repr)
    batches: List[FrozenSet[DirectedMessage]] = []
    for size in range(len(messages), 0, -1):
        for combo in itertools.combinations(messages, size):
            batches.append(frozenset(combo))
            if max_batch_choices is not None and len(batches) >= max_batch_choices:
                return batches
    return batches


def find_nonterminating_schedule(
    graph: Graph,
    sources: Iterable[Node],
    max_configurations: int = 20_000,
    max_batch_choices: Optional[int] = None,
) -> Optional[Lasso]:
    """Search for a schedule that revisits a configuration.

    Returns a replayable :class:`Lasso` certificate if the adversary
    can force non-termination from the given sources, ``None`` if the
    reachable configuration space was exhausted without finding a cycle
    (no adversary wins), and raises :class:`ConfigurationError` when
    the exploration budget is exceeded before either conclusion.
    """
    source_list = list(sources)
    start = initial_configuration(graph, source_list)
    if not start:
        return None

    # Iterative DFS over configurations; ``on_path`` tracks the current
    # stack so a back-edge to it is a certified cycle.
    path: List[Configuration] = [start]
    batch_history: List[FrozenSet[DirectedMessage]] = []
    on_path: Dict[Configuration, int] = {start: 0}
    fully_explored: Set[Configuration] = set()
    choice_stack: List[List[FrozenSet[DirectedMessage]]] = [
        delivery_choices(start, max_batch_choices)
    ]
    visited_count = 1

    while path:
        if not choice_stack[-1]:
            done = path.pop()
            fully_explored.add(done)
            del on_path[done]
            choice_stack.pop()
            if batch_history:
                batch_history.pop()
            continue

        batch = choice_stack[-1].pop()
        current = path[-1]
        successor = apply_delivery(graph, current, batch)
        if not successor:
            continue  # terminating move; no cycle this way
        if successor in on_path:
            loop_start = on_path[successor]
            stem = tuple(path[:loop_start])
            cycle = tuple(path[loop_start:])
            deliveries = tuple(batch_history) + (batch,)
            return Lasso(stem=stem, cycle=cycle, deliveries=deliveries)
        if successor in fully_explored:
            continue

        visited_count += 1
        if visited_count > max_configurations:
            raise ConfigurationError(
                f"configuration search budget ({max_configurations}) exceeded"
            )
        path.append(successor)
        batch_history.append(batch)
        on_path[successor] = len(path) - 1
        choice_stack.append(delivery_choices(successor, max_batch_choices))

    return None


def adversary_can_win(
    graph: Graph,
    sources: Iterable[Node],
    max_configurations: int = 20_000,
) -> bool:
    """Whether some schedule is non-terminating (decided exhaustively)."""
    return (
        find_nonterminating_schedule(
            graph, sources, max_configurations=max_configurations
        )
        is not None
    )
