"""The asynchronous execution engine (Section 4 of the paper).

Drives a configuration (set of in-transit messages) under an
:class:`~repro.asynchrony.adversary.Adversary` strategy, recording the
orbit.  Detects two outcomes:

* **termination** -- the configuration empties;
* **certified non-termination** -- a configuration repeats; for
  memoryless adversaries the run is then provably periodic forever, and
  the engine extracts the :class:`~repro.asynchrony.configurations.Lasso`
  certificate (stem, cycle, delivery schedule).

If neither happens within ``max_steps`` the run is *inconclusive*
(possible with randomized adversaries, whose choices are not a function
of the configuration).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.graphs.graph import Graph, Node
from repro.sync.engine import default_step_budget
from repro.asynchrony.adversary import Adversary, SynchronousAdversary
from repro.asynchrony.configurations import (
    Configuration,
    DirectedMessage,
    Lasso,
    apply_delivery,
    initial_configuration,
)


class AsyncOutcome(enum.Enum):
    """How an asynchronous run ended."""

    TERMINATED = "terminated"
    CYCLE_DETECTED = "cycle-detected"
    INCONCLUSIVE = "inconclusive"


@dataclass
class AsyncRun:
    """Record of an asynchronous execution.

    Attributes
    ----------
    graph, sources:
        Inputs.
    outcome:
        Terminated, certified non-terminating, or inconclusive.
    configurations:
        The orbit, starting with the initial configuration; for a
        terminated run the final element is the empty set.
    deliveries:
        ``deliveries[i]`` is the batch delivered when leaving
        ``configurations[i]``.
    lasso:
        The non-termination certificate when ``outcome`` is
        ``CYCLE_DETECTED`` (memoryless adversaries only).
    steps:
        Number of delivery steps executed.
    """

    graph: Graph
    sources: Tuple[Node, ...]
    outcome: AsyncOutcome
    configurations: List[Configuration] = field(default_factory=list)
    deliveries: List[FrozenSet[DirectedMessage]] = field(default_factory=list)
    lasso: Optional[Lasso] = None

    @property
    def steps(self) -> int:
        return len(self.deliveries)

    @property
    def terminated(self) -> bool:
        return self.outcome is AsyncOutcome.TERMINATED

    @property
    def certified_nonterminating(self) -> bool:
        return self.outcome is AsyncOutcome.CYCLE_DETECTED

    def total_messages_delivered(self) -> int:
        """Messages delivered over the (finite) observed prefix."""
        return sum(len(batch) for batch in self.deliveries)


def run_async(
    graph: Graph,
    sources: Iterable[Node],
    adversary: Adversary,
    max_steps: Optional[int] = None,
    detect_cycles: bool = True,
) -> AsyncRun:
    """Execute asynchronous amnesiac flooding under ``adversary``.

    ``detect_cycles`` enables configuration memoisation; disable it for
    randomized adversaries where a repeated configuration does not
    certify anything (their next choice may differ).  ``max_steps``
    follows the uniform budget rule: ``None`` resolves to the
    graph-scaled :func:`~repro.sync.engine.default_step_budget`,
    explicit budgets must be ``>= 1``.
    """
    if max_steps is None:
        max_steps = default_step_budget(graph)
    elif max_steps < 1:
        raise ConfigurationError("max_steps must be >= 1")
    source_list = list(sources)
    configuration = initial_configuration(graph, source_list)
    run = AsyncRun(
        graph=graph,
        sources=tuple(source_list),
        outcome=AsyncOutcome.INCONCLUSIVE,
        configurations=[configuration],
    )
    first_seen: Dict[Configuration, int] = {configuration: 0}

    for step in range(1, max_steps + 1):
        if not configuration:
            run.outcome = AsyncOutcome.TERMINATED
            return run
        batch = frozenset(adversary.choose(configuration, step))
        configuration = apply_delivery(graph, configuration, batch)
        run.deliveries.append(batch)
        run.configurations.append(configuration)

        if detect_cycles and configuration:
            if configuration in first_seen:
                start = first_seen[configuration]
                run.outcome = AsyncOutcome.CYCLE_DETECTED
                run.lasso = Lasso(
                    stem=tuple(run.configurations[:start]),
                    cycle=tuple(run.configurations[start:-1]),
                    deliveries=tuple(run.deliveries),
                )
                return run
            first_seen[configuration] = len(run.configurations) - 1

    if not configuration:
        run.outcome = AsyncOutcome.TERMINATED
    return run


def synchronous_async_equivalence(
    graph: Graph, sources: Iterable[Node], max_steps: Optional[int] = None
) -> AsyncRun:
    """Run the async engine under the deliver-everything schedule.

    The resulting step count must equal the synchronous termination
    round; the cross-check lives in the integration tests.
    """
    return run_async(
        graph, sources, SynchronousAdversary(), max_steps=max_steps
    )
