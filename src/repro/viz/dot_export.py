"""GraphViz DOT export of flooding runs.

Emits one DOT graph per round with the sending nodes highlighted and
the edges carrying ``M`` drawn bold -- a faithful machine-drawable
version of the paper's figures for users with graphviz installed
(rendering itself is out of scope; the output is plain text).
"""

from __future__ import annotations

import json
from typing import List, Set, Union

from repro.core.amnesiac import FloodingRun
from repro.graphs.graph import Graph, Node
from repro.sync.trace import ExecutionTrace

Run = Union[FloodingRun, ExecutionTrace]


def _senders(run: Run, round_number: int) -> Set[Node]:
    if isinstance(run, FloodingRun):
        if 0 <= round_number - 1 < len(run.sender_sets):
            return set(run.sender_sets[round_number - 1])
        return set()
    return run.senders_in_round(round_number)


def _active_edges(run: Run, round_number: int) -> Set[frozenset]:
    if isinstance(run, FloodingRun):
        # FloodingRun stores aggregates, not per-round directed edges;
        # replay the (deterministic) frontier to recover them exactly.
        from repro.core.amnesiac import initial_frontier, step_frontier

        frontier = initial_frontier(run.graph, list(run.sources))
        for _ in range(round_number - 1):
            frontier = step_frontier(run.graph, frontier)
        return {frozenset((s, r)) for s, r in frontier}
    return {
        frozenset((m.sender, m.receiver))
        for m in run.sent_in_round(round_number)
    }


def round_to_dot(graph: Graph, run: Run, round_number: int) -> str:
    """DOT for one round: senders filled, carrying edges bold."""
    senders = _senders(run, round_number)
    active = _active_edges(run, round_number)
    lines = [f'graph "round_{round_number}" {{']
    lines.append("  label=" + json.dumps(f"round {round_number}") + ";")
    for node in graph.nodes():
        attributes = (
            " [style=filled, fillcolor=lightblue]" if node in senders else ""
        )
        lines.append(f"  {json.dumps(str(node))}{attributes};")
    for u, v in graph.edges():
        style = " [penwidth=3]" if frozenset((u, v)) in active else ""
        lines.append(f"  {json.dumps(str(u))} -- {json.dumps(str(v))}{style};")
    lines.append("}")
    return "\n".join(lines)


def run_to_dot_sequence(graph: Graph, run: Run) -> List[str]:
    """One DOT document per executed round, in order."""
    return [
        round_to_dot(graph, run, round_number)
        for round_number in range(1, run.termination_round + 1)
    ]
