"""Textual visualisation of flooding runs.

* :mod:`~repro.viz.ascii_art` -- per-round ASCII drawings in the
  paper's circled-sender convention (paths, cycles, triangle).
* :mod:`~repro.viz.timeline` -- sender/receiver tables for arbitrary
  topologies.
* :mod:`~repro.viz.dot_export` -- GraphViz DOT snapshots per round.
"""

from repro.viz.ascii_art import (
    cycle_order,
    path_order,
    render_cycle_round,
    render_path_round,
    render_run,
)
from repro.viz.charts import (
    bar_chart,
    line_chart,
    profile_chart,
    series_table,
    sparkline,
)
from repro.viz.dot_export import round_to_dot, run_to_dot_sequence
from repro.viz.live import watch_flood
from repro.viz.timeline import (
    message_flow_table,
    receive_timeline,
    run_summary_line,
    sender_table,
)

__all__ = [
    "cycle_order",
    "path_order",
    "render_cycle_round",
    "render_path_round",
    "render_run",
    "bar_chart",
    "line_chart",
    "profile_chart",
    "series_table",
    "sparkline",
    "round_to_dot",
    "run_to_dot_sequence",
    "watch_flood",
    "message_flow_table",
    "receive_timeline",
    "run_summary_line",
    "sender_table",
]
