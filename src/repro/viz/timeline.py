"""Round timeline tables: textual equivalents of the paper's figures.

The paper's figures show, per round, which nodes are "circled"
(sending).  These renderers produce the same information as fixed-width
text: a per-round table of senders, receivers and edges carrying ``M``,
plus per-node receive timelines.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.core.amnesiac import FloodingRun
from repro.graphs.graph import Node
from repro.sync.trace import ExecutionTrace

Run = Union[FloodingRun, ExecutionTrace]


def _fmt_nodes(nodes: Sequence[Node]) -> str:
    return "{" + ", ".join(str(n) for n in sorted(nodes, key=repr)) + "}"


def sender_table(run: Run) -> str:
    """Round-by-round sender sets ("circled nodes"), one line per round."""
    lines = ["round | sending nodes"]
    lines.append("------+---------------")
    if isinstance(run, FloodingRun):
        per_round = [sorted(s, key=repr) for s in run.sender_sets]
    else:
        per_round = [
            sorted(run.senders_in_round(r), key=repr)
            for r in range(1, run.rounds_executed + 1)
        ]
    for index, senders in enumerate(per_round, start=1):
        lines.append(f"{index:>5} | {_fmt_nodes(senders)}")
    if not per_round:
        lines.append("    - | (no messages ever sent)")
    return "\n".join(lines)


def receive_timeline(run: Run) -> str:
    """Per-node receive rounds, one line per node."""
    if isinstance(run, FloodingRun):
        rounds = run.receive_rounds
    else:
        rounds = run.receive_rounds()
    width = max((len(str(node)) for node in rounds), default=4)
    lines = [f"{'node':<{width}} | received in rounds"]
    lines.append("-" * (width + 1) + "+" + "-" * 20)
    for node in sorted(rounds, key=repr):
        values = rounds[node]
        display = ", ".join(str(r) for r in values) if values else "(never)"
        lines.append(f"{str(node):<{width}} | {display}")
    return "\n".join(lines)


def message_flow_table(trace: ExecutionTrace) -> str:
    """Directed messages per round (engine traces only)."""
    lines = ["round | messages"]
    lines.append("------+-----------------------------")
    for round_number in range(1, trace.rounds_executed + 1):
        arrows = ", ".join(
            f"{m.sender}->{m.receiver}"
            for m in sorted(
                trace.sent_in_round(round_number),
                key=lambda m: (repr(m.sender), repr(m.receiver)),
            )
        )
        lines.append(f"{round_number:>5} | {arrows}")
    return "\n".join(lines)


def run_summary_line(run: Run, label: str = "") -> str:
    """One-line run summary for report listings."""
    if isinstance(run, FloodingRun):
        messages = run.total_messages
        terminated = run.terminated
    else:
        messages = run.total_messages()
        terminated = run.terminated
    status = "terminated" if terminated else "CUT OFF"
    prefix = f"{label}: " if label else ""
    return (
        f"{prefix}{status} in round {run.termination_round} "
        f"({messages} messages)"
    )
