"""Live rendering: watch a flood execute round by round.

Couples the engine's observer hook to the ASCII renderers so a run can
be *watched* rather than post-processed -- handy in teaching demos and
when debugging a new variant's first divergence.
"""

from __future__ import annotations

import sys
from typing import Optional, TextIO, Tuple

from repro.graphs.graph import Graph, Node
from repro.core.amnesiac import AmnesiacFlooding
from repro.sync.engine import SynchronousEngine
from repro.sync.message import Message
from repro.sync.node import NodeAlgorithm
from repro.sync.trace import ExecutionTrace


class _LiveRenderer:
    """Observer that draws each round as it happens."""

    def __init__(self, graph: Graph, stream: TextIO) -> None:
        self.graph = graph
        self.stream = stream
        self._layout = self._pick_layout()

    def _pick_layout(self) -> str:
        from repro.graphs.properties import is_cycle_graph
        from repro.viz.ascii_art import _is_path

        if _is_path(self.graph):
            return "path"
        if is_cycle_graph(self.graph):
            return "cycle"
        return "table"

    def on_round(self, round_number: int, sent: Tuple[Message, ...]) -> None:
        senders = {m.sender for m in sent}
        self.stream.write(f"round {round_number}:\n")
        if self._layout == "path":
            from repro.viz.ascii_art import _mark, path_order

            order = path_order(self.graph)
            self.stream.write(
                "  " + " --- ".join(_mark(n, senders) for n in order) + "\n"
            )
        elif self._layout == "cycle":
            from repro.viz.ascii_art import cycle_order, render_cycle_round

            order = cycle_order(self.graph)
            for row in render_cycle_round(order, senders).splitlines():
                self.stream.write("  " + row + "\n")
        else:
            arrows = ", ".join(
                f"{m.sender}->{m.receiver}"
                for m in sorted(sent, key=lambda m: (repr(m.sender), repr(m.receiver)))
            )
            self.stream.write(f"  {arrows}\n")


def watch_flood(
    graph: Graph,
    source: Node,
    stream: Optional[TextIO] = None,
    algorithm: Optional[NodeAlgorithm] = None,
    max_rounds: Optional[int] = None,
) -> ExecutionTrace:
    """Run a flood, drawing every round to ``stream`` as it executes.

    Defaults to amnesiac flooding; pass any
    :class:`~repro.sync.node.NodeAlgorithm` to watch a variant instead.
    Returns the completed trace.
    """
    out = stream if stream is not None else sys.stdout
    engine = SynchronousEngine(
        graph, algorithm if algorithm is not None else AmnesiacFlooding()
    )
    renderer = _LiveRenderer(graph, out)
    trace = engine.run([source], max_rounds=max_rounds, observer=renderer)
    verdict = (
        f"terminated after round {trace.termination_round}"
        if trace.terminated
        else f"cut off after round {trace.rounds_executed}"
    )
    out.write(verdict + "\n")
    return trace
