"""ASCII charts for round profiles and survey curves.

Terminal-grade plotting for the quantities the experiments produce:
per-round message loads (the flood's "heartbeat"), termination-time
curves over a parameter sweep, and comparison bars.  No plotting
dependency -- output is plain text suitable for logs and CI.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.errors import ConfigurationError

#: Eight block glyphs, shortest to tallest, for compact sparklines.
SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline: per-value height via block glyphs.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        return ""
    lowest = min(values)
    highest = max(values)
    span = highest - lowest
    if span == 0:
        return SPARK_GLYPHS[0] * len(values)
    glyphs = []
    for value in values:
        index = int((value - lowest) / span * (len(SPARK_GLYPHS) - 1))
        glyphs.append(SPARK_GLYPHS[index])
    return "".join(glyphs)


def bar_chart(
    data: Mapping[str, float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Horizontal labelled bar chart, one row per key (insertion order)."""
    if not data:
        return "(no data)"
    peak = max(data.values())
    label_width = max(len(str(key)) for key in data)
    lines = []
    for key, value in data.items():
        length = 0 if peak == 0 else max(1 if value > 0 else 0, round(width * value / peak))
        suffix = f" {value:g}{(' ' + unit) if unit else ''}"
        lines.append(f"{str(key):<{label_width}} | {'█' * length}{suffix}")
    return "\n".join(lines)


def line_chart(
    values: Sequence[float],
    height: int = 8,
    x_label: str = "round",
    y_label: str = "value",
) -> str:
    """A block-character line chart of a series (index = x).

    Rows are printed top-down; each column's filled height is
    proportional to its value.  Designed for round profiles of a few
    dozen rounds.
    """
    if height < 1:
        raise ConfigurationError("height must be >= 1")
    if not values:
        return "(no data)"
    peak = max(values)
    if peak == 0:
        peak = 1.0
    columns = [round(v / peak * height) for v in values]
    rows: List[str] = []
    for level in range(height, 0, -1):
        row = "".join("█" if column >= level else " " for column in columns)
        rows.append(f"{'':>2}|{row}")
    rows.append("  +" + "-" * len(values))
    rows.append(f"   {x_label} 1..{len(values)}  ({y_label}: max {max(values):g})")
    return "\n".join(rows)


def profile_chart(graph, source) -> str:
    """The per-round message-load curve of one flood, charted.

    Non-bipartite graphs show the echo keeping the line busy past the
    BFS depth; bipartite ones fall to zero at ``e(source)``.
    """
    from repro.analysis.wavefront import frontier_profile

    profile = frontier_profile(graph, source)
    if not profile:
        return "(no messages were ever sent)"
    header = f"messages per round from {source!r}: {sparkline(profile)}"
    return header + "\n" + line_chart(profile, y_label="edges carrying M")


def series_table(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    x_name: str = "x",
) -> str:
    """Tabulate several named series over shared x values, with sparklines."""
    lengths = {len(values) for values in series.values()}
    if lengths and lengths != {len(x_values)}:
        raise ConfigurationError("all series must match the x values in length")
    name_width = max((len(name) for name in series), default=4)
    lines = [f"{x_name}: {list(x_values)}"]
    for name, values in series.items():
        lines.append(
            f"{name:<{name_width}} {sparkline(values)} {[round(v, 2) for v in values]}"
        )
    return "\n".join(lines)
