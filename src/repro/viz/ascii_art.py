"""ASCII renderings of the paper's figure topologies, round by round.

Recreates the look of Figures 1-3 and 5 in plain text: the topology is
drawn once per round with the currently *sending* nodes circled
(``(b)``) and idle nodes bare (`` b ``), which is exactly the paper's
visual convention ("Circled nodes are sending M in that round").

Layouts are provided for the figure families (paths, cycles, triangle);
arbitrary graphs fall back to the timeline tables of
:mod:`repro.viz.timeline`.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Union

from repro.core.amnesiac import FloodingRun
from repro.graphs.graph import Graph, Node
from repro.graphs.properties import is_cycle_graph
from repro.sync.trace import ExecutionTrace

Run = Union[FloodingRun, ExecutionTrace]


def _senders_by_round(run: Run) -> List[Set[Node]]:
    if isinstance(run, FloodingRun):
        return [set(s) for s in run.sender_sets]
    return [
        run.senders_in_round(r) for r in range(1, run.rounds_executed + 1)
    ]


def _mark(node: Node, senders: Set[Node]) -> str:
    text = str(node)
    return f"({text})" if node in senders else f" {text} "


def render_path_round(order: Sequence[Node], senders: Set[Node]) -> str:
    """One round of a path graph: ``a --- (b) --- c --- d`` style."""
    return " --- ".join(_mark(node, senders).strip() for node in order)


def render_cycle_round(order: Sequence[Node], senders: Set[Node]) -> str:
    """One round of a cycle laid out on two text rows.

    The cycle ``v0 v1 ... v_{n-1}`` is split into a top row (first
    half, left to right) and bottom row (second half, right to left),
    with the wraparound edges implied by the row ends.
    """
    half = (len(order) + 1) // 2
    top = [order[i] for i in range(half)]
    bottom = [order[i] for i in range(len(order) - 1, half - 1, -1)]
    top_text = " - ".join(_mark(n, senders) for n in top)
    bottom_text = " - ".join(_mark(n, senders) for n in bottom)
    return top_text + "\n" + bottom_text


def path_order(graph: Graph) -> List[Node]:
    """Endpoint-to-endpoint node order of a path graph."""
    endpoints = [n for n in graph.nodes() if graph.degree(n) == 1]
    if len(endpoints) != 2 or not _is_path(graph):
        raise ValueError("graph is not a path")
    order = [min(endpoints, key=repr)]
    previous = None
    while len(order) < graph.num_nodes:
        current = order[-1]
        nxt = [n for n in graph.neighbors(current) if n != previous]
        previous = current
        order.append(nxt[0])
    return order


def cycle_order(graph: Graph) -> List[Node]:
    """Cyclic node order of a cycle graph, anchored deterministically."""
    if not is_cycle_graph(graph):
        raise ValueError("graph is not a simple cycle")
    start = min(graph.nodes(), key=repr)
    order = [start]
    previous = None
    while len(order) < graph.num_nodes:
        current = order[-1]
        nxt = sorted(
            (n for n in graph.neighbors(current) if n != previous), key=repr
        )
        previous = current
        order.append(nxt[0])
    return order


def _is_path(graph: Graph) -> bool:
    degrees = sorted(graph.degree(n) for n in graph.nodes())
    return (
        graph.num_nodes >= 2
        and graph.num_edges == graph.num_nodes - 1
        and degrees[-1] <= 2
    )


def render_run(graph: Graph, run: Run, title: str = "") -> str:
    """Full per-round ASCII animation of a run on a path or cycle.

    Falls back to the sender table for other topologies, so callers can
    use it unconditionally.
    """
    from repro.viz.timeline import sender_table

    senders_per_round = _senders_by_round(run)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    if _is_path(graph):
        order = path_order(graph)
        for index, senders in enumerate(senders_per_round, start=1):
            lines.append(f"round {index}:")
            lines.append("  " + " --- ".join(_mark(n, senders) for n in order))
    elif is_cycle_graph(graph):
        order = cycle_order(graph)
        for index, senders in enumerate(senders_per_round, start=1):
            lines.append(f"round {index}:")
            for row in render_cycle_round(order, senders).splitlines():
                lines.append("  " + row)
    else:
        lines.append(sender_table(run))
        return "\n".join(lines)
    lines.append(
        f"terminated after round {run.termination_round}"
        if run.terminated
        else "cut off before termination"
    )
    return "\n".join(lines)
