"""Sharded censuses: orbit detection and receipt counting across cores.

The configuration census of
:func:`repro.core.initial_conditions.classify_all_configurations`
evolves every non-empty set of in-transit messages of a small graph to
a termination verdict -- ``2^(2m) - 1`` independent orbit detections,
the second embarrassingly parallel batch workload of the reproduction
(the paper's follow-up, "Terminating cases of flooding", is exactly
this census at scale).

The sharding reuses the sweep pool's worker plumbing: workers hold the
CSR index (pickled to them once at pool start-up), tasks are chunks of
arc-bitmask integers, and each worker runs exact orbit detection
(:func:`repro.fastpath.evolve_arc_mask`) over its chunk.  Verdicts
reduce to three order-insensitive aggregates -- total count,
terminating count, and the *earliest* non-terminating witnesses -- so
the merge tags every witness with its enumeration position and keeps
the globally smallest ones, making the parallel census's output
identical to the serial loop's for any worker count or chunk size.

:func:`receipt_counts` is the second census lane: per-node receive
counts for many source sets at once, batched through the oracle
backend -- large deterministic batches ride the word-packed bitset
cover sweep (:mod:`repro.fastpath.bitset_oracle`) inside whichever
tier (serial or pool chunks) executes them.
:func:`repro.core.multisource.receipt_census` classifies its output
into the once/twice/never partition.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.fastpath.engine import evolve_arc_mask
from repro.graphs.graph import Graph
from repro.parallel.pool import (
    SweepPool,
    default_chunksize,
    worker_count,
)
from repro.parallel import pool as _pool_module

MIN_PARALLEL_CENSUS = 2048
"""Below this many masks, auto mode keeps the census serial.

A single orbit detection on a census-sized graph costs microseconds --
three orders of magnitude less than a sweep flood -- so the batch has
to be correspondingly larger before pool start-up amortises.
"""

_CensusTask = Tuple[int, List[int], int]
_CensusResult = Tuple[int, int, List[Tuple[int, int]]]


def _census_chunk(task: _CensusTask) -> _CensusResult:
    """Worker body: evolve one chunk of arc masks on the local index.

    Returns ``(position, terminating_count, witnesses)`` where
    witnesses are ``(enumeration_position, mask)`` pairs for the first
    ``witness_cap`` non-terminating masks of the chunk.
    """
    position, masks, witness_cap = task
    index = _pool_module._WORKER_INDEX
    terminating = 0
    witnesses: List[Tuple[int, int]] = []
    for offset, mask in enumerate(masks):
        if evolve_arc_mask(index, mask)[0]:
            terminating += 1
        elif len(witnesses) < witness_cap:
            witnesses.append((position + offset, mask))
    return position, terminating, witnesses


def classify_masks(
    graph: Graph,
    masks: Sequence[int],
    witness_cap: int = 5,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> Tuple[int, List[int]]:
    """Classify arc-bitmask configurations, sharded across workers.

    Returns ``(terminating_count, witness_masks)`` with
    ``witness_masks`` the first ``witness_cap`` non-terminating masks
    in enumeration order -- byte-identical to running
    :func:`~repro.fastpath.evolve_arc_mask` over ``masks`` serially.

    ``workers=None`` auto-sizes and falls back to the serial loop when
    the batch is below :data:`MIN_PARALLEL_CENSUS` or only one core is
    usable -- same contract as :func:`repro.parallel.parallel_sweep`,
    with a higher floor because orbit detections are far cheaper per
    item than sweep floods.
    """
    resolved_workers = worker_count(workers)
    serial = workers is None and (
        resolved_workers <= 1 or len(masks) < MIN_PARALLEL_CENSUS
    )
    if serial:
        return _classify_serial(graph, masks, witness_cap)

    if chunksize is None:
        chunksize = default_chunksize(len(masks), resolved_workers)
    tasks: List[_CensusTask] = [
        (start, list(masks[start : start + chunksize]), witness_cap)
        for start in range(0, len(masks), chunksize)
    ]
    terminating = 0
    tagged_witnesses: List[Tuple[int, int]] = []
    with SweepPool(graph, workers=resolved_workers) as pool:
        for _, chunk_terminating, chunk_witnesses in pool._pool.imap(
            _census_chunk, tasks
        ):
            terminating += chunk_terminating
            tagged_witnesses.extend(chunk_witnesses)
    # imap keeps chunks ordered, so tags arrive ascending already; the
    # sort documents (and enforces) the order-insensitive merge.
    tagged_witnesses.sort()
    return terminating, [mask for _, mask in tagged_witnesses[:witness_cap]]


def receipt_counts(
    graph: Graph,
    source_sets: Sequence[Iterable[object]],
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
) -> List[Tuple[int, ...]]:
    """Per-node receive counts for many source sets, oracle-backed.

    Row ``i`` is a tuple over ``graph.nodes()`` order: how many times
    each node receives the message when flooding starts from
    ``source_sets[i]`` (0, 1 or 2 -- never more, by the double-cover
    correspondence).  The batch runs as one
    :func:`~repro.parallel.parallel_sweep` on the oracle backend, so
    large deterministic batches take the word-packed bitset cover
    sweep and the pool sharding rules apply unchanged (serial below
    the batch floor or on one core).
    """
    from repro.parallel.pool import parallel_sweep

    runs = parallel_sweep(
        graph,
        source_sets,
        max_rounds=max_rounds,
        backend="oracle",
        workers=workers,
        chunksize=chunksize,
        collect_receives=True,
    )
    # receive_rounds_by_id is indexed by CSR node id, which follows
    # graph.nodes() order by construction.
    return [
        tuple(len(rounds) for rounds in run.receive_rounds_by_id)
        for run in runs
    ]


def _classify_serial(
    graph: Graph, masks: Iterable[int], witness_cap: int
) -> Tuple[int, List[int]]:
    """The in-process census loop (also the single-core fallback)."""
    from repro.fastpath.indexed import IndexedGraph

    index = IndexedGraph.of(graph)
    terminating = 0
    witnesses: List[int] = []
    for mask in masks:
        if evolve_arc_mask(index, mask)[0]:
            terminating += 1
        elif len(witnesses) < witness_cap:
            witnesses.append(mask)
    return terminating, witnesses
