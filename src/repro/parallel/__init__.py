"""Sharded multi-core execution of the reproduction's batch workloads.

The paper's two headline experiment families are batches of thousands
of independent runs over one graph: all-pairs termination sweeps
(Hussak & Trehan 2019) and the initial-conditions census (the
"Terminating cases of flooding" follow-up).  Both read one frozen CSR
index and write independent results, which makes them embarrassingly
parallel -- this package is the worker-pool layer that puts them on
all cores:

* :func:`parallel_sweep` -- sharded drop-in for
  :func:`repro.fastpath.sweep`: partitions a batch of source sets
  across ``multiprocessing`` workers (the index is pickled once per
  worker, never per run), streams results back in deterministic input
  order, applies a chunk-size heuristic, and falls back to the serial
  loop for small batches or single-core machines.  Output is
  bit-identical to the serial sweep for every worker count and chunk
  size.
* :class:`SweepPool` -- the reusable serving shape: one pool of warm
  workers per graph, many batches through it.  Its async hooks
  (:meth:`~repro.parallel.pool.SweepPool.sweep_async` /
  :meth:`~repro.parallel.pool.SweepPool.submit_ids`) return
  :class:`concurrent.futures.Future` s and are what the query service
  (:mod:`repro.service`) drives; :func:`serial_sweep_ids` is the same
  post-validation loop without processes (the service's 1-core mode).
* :func:`repro.parallel.census.classify_masks` -- the same sharding
  for the configuration census's orbit detections; its sibling
  :func:`repro.parallel.census.receipt_counts` batches per-node
  receive-count censuses through the oracle backend (word-packed
  bitset sweep on large deterministic batches).

``repro.core`` routes :func:`~repro.core.multisource.all_pairs_termination`
and :func:`~repro.core.initial_conditions.classify_all_configurations`
through this package behind unchanged signatures, so existing callers
scale to the machine without code changes.  See
``docs/architecture.md`` for the dataflow.
"""

from repro.parallel.census import (
    MIN_PARALLEL_CENSUS,
    classify_masks,
    receipt_counts,
)
from repro.parallel.pool import (
    MAX_CHUNK,
    MIN_PARALLEL_BATCH,
    SweepPool,
    default_chunksize,
    parallel_sweep,
    serial_batch_ids,
    serial_sweep_ids,
    worker_count,
)

__all__ = [
    "MAX_CHUNK",
    "MIN_PARALLEL_BATCH",
    "MIN_PARALLEL_CENSUS",
    "SweepPool",
    "classify_masks",
    "default_chunksize",
    "parallel_sweep",
    "receipt_counts",
    "serial_batch_ids",
    "serial_sweep_ids",
    "worker_count",
]
