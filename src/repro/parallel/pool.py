"""The sharded sweep pool: one graph, many floods, all cores.

A sweep (:func:`repro.fastpath.sweep`) is embarrassingly parallel
across source sets: every run reads the same frozen CSR index and
writes an independent result.  This module shards a batch across
``multiprocessing`` workers with exactly one expensive transfer:

* the parent pickles the :class:`~repro.fastpath.indexed.IndexedGraph`
  **once** into a bytes payload (the index's pickle support drops its
  process-local memo caches), and every worker unpickles it **once** in
  its pool initializer -- never per run, never per chunk;
* tasks are ``(position, [source-id lists], BatchKey, [stream keys])``
  chunks -- a few dozen bytes each, carrying the *same*
  :class:`~repro.api.spec.BatchKey` the batch was resolved to (the
  execution projection of the requests' :class:`~repro.api.spec.FloodSpec`)
  -- and results stream back as raw statistic tuples
  (:data:`~repro.fastpath.pure_backend.RawRun`), which the parent wraps
  into :class:`~repro.fastpath.engine.IndexedRun` against its own copy
  of the index;
* ordered ``imap`` keeps results streaming back in deterministic input
  order regardless of which worker finishes first, so parallel output
  is **bit-identical** to the serial sweep -- same dataclasses, same
  field values, same ordering (the determinism tests assert this across
  worker counts and chunk sizes, budget cut-offs included).

Entry points
------------

:func:`parallel_sweep`
    One-shot drop-in for :func:`repro.fastpath.sweep`.  Auto-sizes the
    pool to the usable cores, falls back to the serial loop for small
    batches or single-core machines (identical results either way), and
    accepts the same ``backend=`` names, including ``"oracle"``.

:class:`SweepPool`
    The reusable form for serving workloads: keep one pool of warm
    workers per graph and push many batches through it, paying worker
    start-up and index transfer once per pool instead of once per call.
    :meth:`SweepPool.sweep_specs` is the spec-native batch form the
    :class:`~repro.api.session.FloodSession` facade drives.

Usage::

    from repro.graphs import erdos_renyi
    from repro.parallel import SweepPool, parallel_sweep

    graph = erdos_renyi(10_000, 8 / 10_000, seed=1, connected=True)
    sets = [[v] for v in graph.nodes()[:512]]

    runs = parallel_sweep(graph, sets)            # auto workers/chunks
    runs = parallel_sweep(graph, sets, workers=4) # pin the pool size

    with SweepPool(graph, workers=4) as pool:     # serving shape
        first = pool.sweep(sets)
        again = pool.sweep(sets, backend="oracle")
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from concurrent.futures import Future
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.api.spec import BatchKey, FloodSpec
from repro.errors import ConfigurationError
from repro.fastpath.engine import (
    IndexedRun,
    _resolve_budget,
    dispatch_batch,
    ensure_homogeneous_specs,
    routed_sweep_backend,
    select_backend,
    wrap_raw_run,
)
from repro.fastpath.indexed import IndexedGraph
from repro.fastpath.pure_backend import RawRun
from repro.fastpath.variants import VariantSpec, variant_backend
from repro.graphs.graph import Graph, Node

MIN_PARALLEL_BATCH = 32
"""Below this many source sets, auto mode keeps the sweep serial.

Pool start-up plus one index transfer per worker costs a few
milliseconds; a batch has to amortise that to win.  An explicit
``workers=`` request overrides the floor (the caller asked for a pool,
they get one).
"""

MAX_CHUNK = 64
"""Upper bound on the chunk heuristic, to keep results streaming."""

_Task = Tuple[int, List[List[int]], BatchKey, Optional[List[int]]]
_TaskResult = Tuple[int, List[RawRun]]

# Per-worker state, populated exactly once by _init_worker.  Plain
# module globals: each worker process gets its own copy, and the pool
# initializer runs before any task, so tasks never race on it.
_WORKER_INDEX: Optional[IndexedGraph] = None


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve a worker count: explicit, else the usable cores.

    ``None`` means "what this machine can actually run in parallel":
    the scheduling affinity when the platform exposes it (containers
    often restrict it below ``cpu_count``), else ``os.cpu_count()``.
    """
    if workers is not None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        return workers
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def default_chunksize(batch_size: int, workers: int) -> int:
    """The chunk heuristic: ~4 chunks per worker, capped at ``MAX_CHUNK``.

    Large enough that per-chunk dispatch overhead (one pickle of a few
    id lists, one queue round trip) is amortised over many runs; small
    enough that every worker gets several chunks (tail latency -- one
    slow chunk cannot serialise the whole batch) and results stream
    back early.
    """
    if batch_size <= 0:
        return 1
    target = -(-batch_size // (workers * 4))  # ceil division
    return max(1, min(MAX_CHUNK, target))


def _init_worker(payload: bytes) -> None:
    """Pool initializer: unpickle the shared CSR index, once per worker."""
    global _WORKER_INDEX
    _WORKER_INDEX = pickle.loads(payload)


def _run_chunk(task: _Task) -> _TaskResult:
    """Worker body: run one chunk of source-id lists on the local index.

    The chunk carries the batch's :class:`BatchKey` verbatim -- the
    worker executes exactly the object the parent batched on, through
    the same :func:`~repro.fastpath.engine.dispatch_batch` funnel the
    serial path uses (so eligible oracle chunks take the word-packed
    bitset sweep inside the worker too; ``MAX_CHUNK`` = 64 keeps those
    chunks word-aligned).
    """
    position, id_lists, key, run_keys = task
    return position, dispatch_batch(_WORKER_INDEX, id_lists, key, run_keys)


def _wrap_runs(
    index: IndexedGraph,
    id_lists: Sequence[List[int]],
    raw_runs: Iterable[RawRun],
    key: BatchKey,
) -> List[IndexedRun]:
    """Rehydrate raw statistic tuples into IndexedRuns on the parent index.

    Delegates to the engine's shared wrapper so sharded results are
    constructed by exactly the same code as serial ones.
    """
    return [
        wrap_raw_run(index, ids, key.backend, raw, key.variant)
        for ids, raw in zip(id_lists, raw_runs)
    ]


def _variant_run_keys(
    variant: Optional[VariantSpec], count: int
) -> Optional[List[int]]:
    """Per-run RNG stream keys for a batch: key ``i`` belongs to run ``i``.

    Keys are derived from the batch *position*, before any sharding, so
    chunking and worker scheduling cannot move a run onto a different
    stream -- the root of the cross-worker determinism guarantee for
    stochastic variants.  ``None`` for deterministic work.
    """
    if variant is None:
        return None
    return [variant.run_key(position) for position in range(count)]


class SweepPool:
    """A persistent pool of workers warmed with one graph's CSR index.

    The serving-scale shape: build once per graph, push many batches
    through :meth:`sweep`.  Construction forks/spawns ``workers``
    processes and ships each the pickled index exactly once; after
    that, every batch costs only its per-chunk dispatch.

    Use as a context manager (or call :meth:`close`) to reap the
    workers deterministically.
    """

    def __init__(
        self,
        graph: Graph,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.graph = graph
        self.index = IndexedGraph.of(graph)
        self._probe_rounds: Optional[Tuple[int, ...]] = None
        self.workers = worker_count(workers)
        if start_method is None and sys.platform == "linux":
            # fork is the cheapest way to stand workers up, but it is
            # only reliably safe on Linux (macOS frameworks and helper
            # threads do not survive fork; spawn is that platform's
            # default for a reason) -- everywhere else, keep the
            # platform default.
            start_method = "fork"
        context = multiprocessing.get_context(start_method)
        payload = pickle.dumps(self.index, protocol=pickle.HIGHEST_PROTOCOL)
        self._pool = context.Pool(
            processes=self.workers,
            initializer=_init_worker,
            initargs=(payload,),
        )

    # ------------------------------------------------------------------

    def sweep(
        self,
        source_sets: Iterable[Iterable[Node]],
        max_rounds: Optional[int] = None,
        backend: Optional[str] = None,
        chunksize: Optional[int] = None,
        collect_senders: bool = False,
        collect_receives: bool = False,
        variant: Optional[VariantSpec] = None,
        probe: bool = True,
    ) -> List[IndexedRun]:
        """Run one batch across the pool; results in input order.

        Same signature and semantics as :func:`repro.fastpath.sweep`
        (validation, budget resolution and backend selection all happen
        in the parent, so errors surface before any work is
        dispatched), including the probe-aware ``backend=None`` routing
        and the ``variant`` stepper lane with its per-position seed
        streams.  A legacy shim over the spec pipeline: the kwargs
        resolve to one :class:`BatchKey` exactly like a
        :meth:`sweep_specs` batch.
        """
        id_lists = [
            self.index.resolve_sources(sources) for sources in source_sets
        ]
        budget = _resolve_budget(self.graph, max_rounds)
        chosen = self._resolve_backend(backend, budget, variant, probe)
        key = BatchKey(budget, chosen, collect_senders, collect_receives, variant)
        return self._sweep_ids(
            id_lists, key, chunksize, _variant_run_keys(variant, len(id_lists))
        )

    def sweep_specs(
        self,
        specs: Sequence[FloodSpec],
        chunksize: Optional[int] = None,
    ) -> List[IndexedRun]:
        """Run one homogeneous spec batch across the pool, in input order.

        The pool twin of :func:`repro.fastpath.engine.sweep_specs`: the
        specs must agree on graph, budget, backend, probe, variant and
        collection flags (they may differ in sources and RNG
        ``stream``), resolve to one :class:`BatchKey`, and every run
        carries its own spec's stream key into whatever chunk it lands
        on -- bit-identical to the serial spec sweep for every worker
        count and chunk size.
        """
        specs = list(specs)
        if not specs:
            return []
        if specs[0].graph != self.graph:
            raise ConfigurationError(
                "sweep_specs: the specs' graph is not this pool's graph"
            )
        key = self._spec_batch_key(specs)
        id_lists = [
            self.index.resolve_sources(spec.sources) for spec in specs
        ]
        run_keys = (
            [spec.run_key() for spec in specs]
            if key.variant is not None
            else None
        )
        return self._sweep_ids(id_lists, key, chunksize, run_keys)

    def _spec_batch_key(self, specs: Sequence[FloodSpec]) -> BatchKey:
        """Batch-resolve specs through the pool's cached probe."""
        head = ensure_homogeneous_specs(specs)
        chosen = self._resolve_backend(
            head.backend, head.max_rounds, head.variant, head.probe
        )
        return head.batch_key(chosen)

    def sweep_async(
        self,
        source_sets: Iterable[Iterable[Node]],
        max_rounds: Optional[int] = None,
        backend: Optional[str] = None,
        chunksize: Optional[int] = None,
        collect_senders: bool = False,
        collect_receives: bool = False,
        variant: Optional[VariantSpec] = None,
        probe: bool = True,
    ) -> "Future[List[IndexedRun]]":
        """Submit one batch without blocking; returns a future of the runs.

        The non-blocking twin of :meth:`sweep` and the hook the async
        service layer (:mod:`repro.service`) drives: validation, budget
        resolution and backend selection still happen synchronously in
        the caller (errors raise *here*, before anything is enqueued),
        then the chunks are handed to the pool and a
        :class:`concurrent.futures.Future` completes -- on the pool's
        result-handler thread -- with exactly the list :meth:`sweep`
        would have returned.  Bridge it into an event loop with
        :func:`asyncio.wrap_future`.
        """
        id_lists = [
            self.index.resolve_sources(sources) for sources in source_sets
        ]
        budget = _resolve_budget(self.graph, max_rounds)
        chosen = self._resolve_backend(backend, budget, variant, probe)
        key = BatchKey(budget, chosen, collect_senders, collect_receives, variant)
        return self.submit_batch(
            id_lists, key, chunksize, _variant_run_keys(variant, len(id_lists))
        )

    def _resolve_backend(
        self,
        backend: Optional[str],
        budget: int,
        variant: Optional[VariantSpec],
        probe: bool,
    ) -> str:
        """The same backend rules as the serial sweep, on the pool index.

        The rounds probe is cached on the pool: the index is frozen for
        the pool's lifetime, and a warm pool serving many small batches
        (its whole reason to exist) must not pay O(samples * (n + m))
        cover-BFS per batch.
        """
        if variant is not None:
            return variant_backend(self.index, backend, variant)
        if backend is not None or not probe:
            return select_backend(self.index, backend)
        from repro.fastpath.probe import probe_termination_rounds, routed_backend

        if self._probe_rounds is None:
            self._probe_rounds = probe_termination_rounds(self.index)
        return routed_backend(self.index, self._probe_rounds, budget)

    def submit_batch(
        self,
        id_lists: Sequence[List[int]],
        key: BatchKey,
        chunksize: Optional[int] = None,
        run_keys: Optional[Sequence[int]] = None,
    ) -> "Future[List[IndexedRun]]":
        """Submit already-resolved id lists under one :class:`BatchKey`.

        The async post-validation core, used by the service layer: it
        resolves and validates sources itself so it can batch requests
        in id space, and its micro-batch buckets are keyed by exactly
        the ``key`` object submitted here.  For variant work the caller
        supplies one RNG stream key per id list (the service derives
        them per *request*, so coalescing cannot move a query onto a
        different stream).  The returned future resolves to the same
        (ordered, parent-index-wrapped) runs the blocking path
        produces; a worker failure resolves it exceptionally instead.
        """
        future: "Future[List[IndexedRun]]" = Future()
        future.set_running_or_notify_cancel()
        if not id_lists:
            future.set_result([])
            return future
        tasks = self._make_tasks(id_lists, key, chunksize, run_keys)

        def on_done(ordered: List[_TaskResult]) -> None:
            # map_async delivers every chunk in task order, so flatten
            # and rehydrate exactly like the blocking path.
            try:
                raw_runs = [raw for _, chunk in ordered for raw in chunk]
                future.set_result(
                    _wrap_runs(self.index, id_lists, raw_runs, key)
                )
            except BaseException as exc:  # pragma: no cover - defensive
                future.set_exception(exc)

        self._pool.map_async(
            _run_chunk, tasks, chunksize=1,
            callback=on_done, error_callback=future.set_exception,
        )
        return future

    def submit_ids(
        self,
        id_lists: Sequence[List[int]],
        budget: int,
        backend: str,
        chunksize: Optional[int] = None,
        collect_senders: bool = False,
        collect_receives: bool = False,
        variant: Optional[VariantSpec] = None,
        run_keys: Optional[Sequence[int]] = None,
    ) -> "Future[List[IndexedRun]]":
        """Legacy-signature shim over :meth:`submit_batch`."""
        return self.submit_batch(
            id_lists,
            BatchKey(budget, backend, collect_senders, collect_receives, variant),
            chunksize,
            run_keys,
        )

    def _make_tasks(
        self,
        id_lists: Sequence[List[int]],
        key: BatchKey,
        chunksize: Optional[int],
        run_keys: Optional[Sequence[int]] = None,
    ) -> List[_Task]:
        """Shard id lists into positioned chunk tasks (shared by both paths).

        ``run_keys`` is sliced with the same offsets as ``id_lists``: a
        run carries its stream key with it into whichever chunk and
        worker it lands on.  Variant work with no explicit keys gets
        the default position-keyed derivation, so a caller reaching
        this layer directly can never silently run every trial on one
        stream.
        """
        if chunksize is None:
            chunksize = default_chunksize(len(id_lists), self.workers)
        elif chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1")
        if run_keys is None:
            run_keys = _variant_run_keys(key.variant, len(id_lists))
        if run_keys is not None and len(run_keys) != len(id_lists):
            raise ConfigurationError(
                "run_keys must align one-to-one with id_lists"
            )
        return [
            (
                start,
                list(id_lists[start : start + chunksize]),
                key,
                (
                    list(run_keys[start : start + chunksize])
                    if run_keys is not None
                    else None
                ),
            )
            for start in range(0, len(id_lists), chunksize)
        ]

    def _sweep_ids(
        self,
        id_lists: Sequence[List[int]],
        key: BatchKey,
        chunksize: Optional[int],
        run_keys: Optional[Sequence[int]] = None,
    ) -> List[IndexedRun]:
        """Dispatch already-resolved id lists (the post-validation core)."""
        if not id_lists:
            return []
        tasks = self._make_tasks(id_lists, key, chunksize, run_keys)
        raw_runs: List[RawRun] = []
        # Ordered imap: chunks stream back in submission order even
        # when a later chunk finishes first, so concatenation recovers
        # input order without a sort.
        for position, chunk_results in self._pool.imap(_run_chunk, tasks):
            assert position == len(raw_runs), "chunk streamed out of order"
            raw_runs.extend(chunk_results)
        return _wrap_runs(self.index, id_lists, raw_runs, key)

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut the workers down and wait for them to exit."""
        self._pool.close()
        self._pool.join()

    def terminate(self) -> None:
        """Kill the workers without draining queued work."""
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "SweepPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()

    def __repr__(self) -> str:
        return f"SweepPool(workers={self.workers}, index={self.index!r})"


def serial_batch_ids(
    index: IndexedGraph,
    id_lists: Sequence[List[int]],
    key: BatchKey,
    run_keys: Optional[Sequence[int]] = None,
) -> List[IndexedRun]:
    """The in-process fallback: same loop the pool runs, no processes.

    Public because the service layer's serial mode (``workers=0`` on a
    single-core box) executes batches through exactly this function --
    one code path, one determinism contract, pool or no pool, and one
    :class:`BatchKey` object from admission to execution.  Variant work
    with ``run_keys=None`` defaults to the position-keyed derivation
    (run ``i`` on stream ``derive_key(variant.seed, i)``), matching
    :func:`repro.fastpath.sweep`.
    """
    if run_keys is None:
        run_keys = _variant_run_keys(key.variant, len(id_lists))
    raw_runs = dispatch_batch(index, id_lists, key, run_keys)
    return _wrap_runs(index, id_lists, raw_runs, key)


def serial_sweep_ids(
    index: IndexedGraph,
    id_lists: Sequence[List[int]],
    budget: int,
    backend: str,
    collect_senders: bool = False,
    collect_receives: bool = False,
    variant: Optional[VariantSpec] = None,
    run_keys: Optional[Sequence[int]] = None,
) -> List[IndexedRun]:
    """Legacy-signature shim over :func:`serial_batch_ids`."""
    return serial_batch_ids(
        index,
        id_lists,
        BatchKey(budget, backend, collect_senders, collect_receives, variant),
        run_keys,
    )


def parallel_sweep(
    graph: Graph,
    source_sets: Iterable[Iterable[Node]],
    max_rounds: Optional[int] = None,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    chunksize: Optional[int] = None,
    collect_senders: bool = False,
    collect_receives: bool = False,
    variant: Optional[VariantSpec] = None,
    probe: bool = True,
) -> List[IndexedRun]:
    """Sharded drop-in for :func:`repro.fastpath.sweep`.

    Partitions ``source_sets`` into chunks, runs them across a worker
    pool, and returns :class:`IndexedRun` results in input order,
    bit-identical to the serial sweep.

    Parameters beyond the serial signature:

    workers:
        ``None`` (default) auto-sizes to the usable cores and *also*
        enables the serial fallback: batches smaller than
        :data:`MIN_PARALLEL_BATCH` (or machines with one usable core)
        run in-process, because a pool cannot pay for itself there.  An
        explicit count -- including ``workers=1`` -- always builds a
        real pool of exactly that size; the determinism tests rely on
        this to exercise actual cross-process runs (pickling included)
        on small batches.
    chunksize:
        Source sets per task; ``None`` applies
        :func:`default_chunksize`.  Only affects scheduling, never
        results.

    >>> from repro.graphs import cycle_graph
    >>> runs = parallel_sweep(cycle_graph(9), [[0], [3], [0, 4]])
    >>> [run.termination_round for run in runs]
    [9, 9, 7]
    """
    index = IndexedGraph.of(graph)
    id_lists = [index.resolve_sources(sources) for sources in source_sets]
    budget = _resolve_budget(graph, max_rounds)
    if variant is not None:
        chosen = variant_backend(index, backend, variant)
    else:
        chosen = routed_sweep_backend(index, backend, budget, probe)
    if chunksize is not None and chunksize < 1:
        raise ConfigurationError("chunksize must be >= 1")
    key = BatchKey(budget, chosen, collect_senders, collect_receives, variant)
    run_keys = _variant_run_keys(variant, len(id_lists))
    resolved_workers = worker_count(workers)
    serial = workers is None and (
        resolved_workers <= 1 or len(id_lists) < MIN_PARALLEL_BATCH
    )
    if serial:
        return serial_batch_ids(index, id_lists, key, run_keys)
    with SweepPool(graph, workers=resolved_workers) as pool:
        return pool._sweep_ids(id_lists, key, chunksize, run_keys)
