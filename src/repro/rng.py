"""Counter-based randomness for the stochastic variants.

The reference variants originally drew their randomness from a
sequential ``random.Random`` stream, which makes every outcome depend
on *iteration order*: insert a trial, reshard a batch, or visit arcs in
a different order and every later draw changes.  That is fatal for the
fast path, whose contract is bit-identical results across backends,
worker counts and chunk sizes.

This module replaces the stream with a *counter-based* generator in the
style of Philox/Threefry (see also JAX's ``random.fold_in``): a draw is
a pure hash of *where it is used* --

    ``uniform = hash(seed, run_index, round_number, arc_slot)``

-- so any execution order, sharding, or batching produces the same
value for the same coordinates.  The hash is the SplitMix64 finalizer
(Steele, Lea & Flood 2014), whose avalanche behaviour is more than
enough for Monte-Carlo thinning decisions, computed with plain Python
int arithmetic (dependency-free, identical on every platform).

Layout of a draw's coordinates:

* :func:`derive_key` folds a user seed and any number of counter
  indices (trial number, parameter position) into a 64-bit *stream
  key*.  The same derivation is used by the surveys of
  :mod:`repro.variants` and the arc-mask steppers of
  :mod:`repro.fastpath.variants`, so the reference and the fast path
  see the same randomness.
* :func:`round_key` folds a round number into a stream key, once per
  round.
* :func:`slot_draw` hashes an arc slot against a round key -- the
  per-message operation, one SplitMix64 finalize -- yielding a 53-bit
  integer.  A message survives a thinning probability ``p`` iff its
  draw is below :func:`survival_threshold` of ``p``; comparing in
  integer space keeps the decision exact at ``p = 0.0`` (never) and
  ``p = 1.0`` (always).
"""

from __future__ import annotations

import os

MASK64 = (1 << 64) - 1
"""All arithmetic is modulo 2**64 (the SplitMix64 word size)."""

GAMMA = 0x9E3779B97F4A7C15
"""2**64 / golden ratio: the Weyl-sequence increment of SplitMix64."""

_SEED_SALT = 0x5DEECE66D2B79F8B
"""Mixed into raw seeds so ``seed=0`` is not the all-zero stream."""

DRAW_BITS = 53
"""Draws are 53-bit integers (exactly representable as floats)."""

_DRAW_SPACE = 1 << DRAW_BITS


def mix64(value: int) -> int:
    """The SplitMix64 finalizer: a 64-bit avalanche hash."""
    value &= MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
    return value ^ (value >> 31)


def fresh_seed() -> int:
    """One OS-entropy draw: the seed of an explicitly unseeded run.

    This is the package's *only* sanctioned entropy source.  Callers
    with ``seed=None`` draw exactly once, record the value in their
    result, and derive every subsequent decision from it through
    :func:`derive_key` -- so even "random" runs are replayable from
    their recorded seed.  63 bits keeps the value a non-negative
    Python/numpy int64.
    """
    return int.from_bytes(os.urandom(8), "big") >> 1


def derive_key(seed: int, *indices: int) -> int:
    """Fold a seed and counter indices into an independent stream key.

    ``derive_key(seed, i)`` is the per-trial (or per-run) derivation:
    trial ``i`` of a seeded experiment owns the stream
    ``derive_key(seed, i)`` regardless of how many trials ran before
    it, in what order, or in which worker process.  Extra indices nest
    further coordinates (``derive_key(seed, rate_index, trial)``).
    """
    key = mix64((seed & MASK64) ^ _SEED_SALT)
    for index in indices:
        key = mix64(key ^ ((index & MASK64) * GAMMA) & MASK64)
    return key


def derive_keys(seed: int, count: int) -> list:
    """The first ``count`` per-run keys of ``seed`` (positions 0..count-1)."""
    return [derive_key(seed, index) for index in range(count)]


def round_key(key: int, round_number: int) -> int:
    """Fold a round number into a stream key (hoisted out of arc loops)."""
    return mix64(key ^ ((round_number * GAMMA) & MASK64))


def slot_draw(rkey: int, slot: int) -> int:
    """The 53-bit draw for one arc slot under a round key.

    One finalize per message -- the hot operation of the stochastic
    steppers.  Distinct ``(key, round, slot)`` coordinates give
    independent draws; the same coordinates always give the same draw.
    """
    return mix64(rkey ^ ((slot * GAMMA) & MASK64)) >> (64 - DRAW_BITS)


def mask_hold_split(rkey: int, base: int, mask: int, threshold: int) -> tuple:
    """Batched :func:`slot_draw` over the set bits of an arc mask.

    For each set bit ``position`` of ``mask`` (an arc block starting at
    absolute slot ``base``), draws ``slot_draw(rkey, base + position)``
    and accumulates the bit in the *held* submask iff the draw falls
    below ``threshold``.  Returns ``(held, best_position, best_draw)``
    where ``best`` is the smallest ``(draw, position)`` pair of the
    block -- the forced-delivery candidate of the random-delay stepper
    when every coin says hold.  ``best_position`` is ``-1`` for an
    empty mask.

    This is the hot per-step loop of the delay variant, so the
    SplitMix64 finalizer is inlined (one call per *mask* instead of one
    per arc); the draws are bit-identical to per-slot
    :func:`slot_draw` calls, which the scenario equivalence matrix
    holds against the set-based adversary consuming the same
    coordinates one slot at a time.
    """
    held = 0
    best_draw = -1
    best_position = -1
    position = 0
    shift = 64 - DRAW_BITS
    while mask:
        if mask & 1:
            value = rkey ^ (((base + position) * GAMMA) & MASK64)
            value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
            value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & MASK64
            draw = (value ^ (value >> 31)) >> shift
            if draw < threshold:
                held |= 1 << position
            # Ascending positions with strict <: ties keep the lowest.
            if best_draw < 0 or draw < best_draw:
                best_draw = draw
                best_position = position
        mask >>= 1
        position += 1
    return held, best_position, best_draw


def slot_uniform(rkey: int, slot: int) -> float:
    """:func:`slot_draw` scaled to a float in ``[0, 1)``."""
    return slot_draw(rkey, slot) * (1.0 / _DRAW_SPACE)


def survival_threshold(probability: float) -> int:
    """The integer cut-off for a survival probability.

    A message survives iff ``slot_draw(...) < survival_threshold(p)``;
    the endpoints are exact: ``p = 0.0`` keeps nothing and ``p = 1.0``
    keeps everything (every 53-bit draw is below ``2**53``).
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    return round(probability * _DRAW_SPACE)
