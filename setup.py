"""Setup shim: enables legacy editable installs where the `wheel`
package is unavailable (PEP 660 editable builds need bdist_wheel).
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
